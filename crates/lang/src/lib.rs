//! The Mortar Stream Language (MSL).
//!
//! "Users write queries in the Mortar Stream Language … a text-based version
//! of the 'boxes and arrows' query specification approach" (Section 2.2).
//! The Wi-Fi location query of Section 7.4 is three lines:
//!
//! ```text
//! stream wifi(rssi, x, y);
//! frames = select(wifi, key == 7);
//! loud = topk(frames, 3, rssi) window 1s;
//! position = trilat(loud);
//! ```
//!
//! A program is a pipeline of named stages over a declared source stream;
//! [`compile()`] lowers it to a [`QueryDef`]: the source, an optional select
//! predicate (executed at every source), one in-network aggregate with its
//! window, and an optional root post-operator (resolved against the
//! deployment's [`mortar_core::OpRegistry`]).
//!
//! Multi-stage programs — several aggregates chained by reading an earlier
//! stage's output — compile with [`compile_pipeline`] into a
//! [`PipelineDef`] that targets the typed session API:
//! [`PipelineDef::to_pipeline`] produces a [`mortar_core::Pipeline`] of
//! subscription-wired stages for
//! [`mortar_core::Mortar::install_pipeline`], and [`QueryDef::stage`]
//! lowers a single query onto a [`mortar_core::QueryBuilder`].
//!
//! # Examples
//!
//! ```
//! let program = "
//!     stream sensors(value);
//!     load = avg(sensors, value) window 20s slide 10s;
//! ";
//! let def = mortar_lang::compile(program).unwrap();
//! assert_eq!(def.name, "load");
//! assert_eq!(def.source, "sensors");
//! ```

pub mod compile;
pub mod lexer;
pub mod parser;

pub use compile::{compile, compile_pipeline, LangError, PipelineDef, QueryDef, StageDef};
pub use lexer::{lex, Token};
pub use parser::{parse, Arg, Call, Program, Stmt};
