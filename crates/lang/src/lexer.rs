//! MSL tokenizer.

use crate::compile::LangError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (durations are Number + unit Ident).
    Number(f64),
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
}

/// Tokenizes MSL source. `#` starts a line comment.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::EqEq);
                    i += 2;
                } else {
                    out.push(Token::Assign);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(LangError::new("unexpected character '!' (did you mean !=?)"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || bytes[i] == '.' || bytes[i] == '_')
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().filter(|&&ch| ch != '_').collect();
                let n: f64 = text
                    .parse()
                    .map_err(|_| LangError::new(format!("bad number literal {text:?}")))?;
                out.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => {
                return Err(LangError::new(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_wifi_query() {
        let toks = lex("loud = topk(frames, 3, rssi) window 1s;").unwrap();
        assert_eq!(toks[0], Token::Ident("loud".into()));
        assert_eq!(toks[1], Token::Assign);
        assert_eq!(toks[2], Token::Ident("topk".into()));
        assert!(toks.contains(&Token::Number(3.0)));
        assert!(toks.contains(&Token::Ident("window".into())));
        // "1s" lexes as Number(1) + Ident("s").
        assert!(toks
            .windows(2)
            .any(|w| w[0] == Token::Number(1.0) && w[1] == Token::Ident("s".into())));
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let toks = lex("# a comment\n  x = y ;").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("x".into()), Token::Assign, Token::Ident("y".into()), Token::Semi]
        );
    }

    #[test]
    fn eqeq_vs_assign() {
        let toks = lex("a == b = c").unwrap();
        assert_eq!(toks[1], Token::EqEq);
        assert_eq!(toks[3], Token::Assign);
    }

    #[test]
    fn two_char_comparisons() {
        let toks = lex("a <= b >= c != d < e > f").unwrap();
        assert_eq!(toks[1], Token::Le);
        assert_eq!(toks[3], Token::Ge);
        assert_eq!(toks[5], Token::NotEq);
        assert_eq!(toks[7], Token::Lt);
        assert_eq!(toks[9], Token::Gt);
        assert!(lex("a ! b").is_err(), "bare '!' is not a token");
    }

    #[test]
    fn negative_numbers() {
        let toks = lex("select(w, rssi > -70)").unwrap();
        assert!(toks.contains(&Token::Number(-70.0)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a @ b").is_err());
        assert!(lex("x = 1.2.3").is_err());
    }
}
