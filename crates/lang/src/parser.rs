//! MSL parser: token stream → program AST.

use crate::compile::LangError;
use crate::lexer::Token;

/// A whole MSL program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Stream declarations: (name, field names).
    pub streams: Vec<(String, Vec<String>)>,
    /// Pipeline statements in order.
    pub stmts: Vec<Stmt>,
}

/// `name = call [window …] ;`
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Bound name (the last statement names the query).
    pub name: String,
    /// The stage call.
    pub call: Call,
    /// Window range, µs (or tuples when `tuple_window`).
    pub window_range: Option<u64>,
    /// Window slide (defaults to the range).
    pub window_slide: Option<u64>,
    /// Whether the window counts tuples instead of time.
    pub tuple_window: bool,
    /// GROUP BY field (`key` names the tuple's routing key).
    pub group_by: Option<String>,
    /// Optional `cap <n>` bound on distinct keys per window.
    pub group_cap: Option<usize>,
    /// `feed policy <name> [<n>]`: the stage's declared intake policy
    /// (name + optional numeric parameter; validated by the compiler).
    pub feed_policy: Option<(String, Option<f64>)>,
}

/// A stage invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Function name (`select`, `sum`, `topk`, custom, …).
    pub func: String,
    /// Arguments.
    pub args: Vec<Arg>,
}

/// A call argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Reference to a stream or prior stage.
    Name(String),
    /// Numeric literal.
    Number(f64),
    /// `field cmp number` or `key == number`.
    Compare {
        /// Field (or `key`).
        field: String,
        /// One of `==`, `<`, `>`.
        op: CmpTok,
        /// Constant operand.
        value: f64,
    },
}

/// Comparison token in a predicate argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpTok {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

struct P {
    toks: Vec<Token>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), LangError> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            other => Err(LangError::new(format!("expected {want:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(LangError::new(format!("expected identifier, found {other:?}"))),
        }
    }
}

/// Parses a token stream into a [`Program`].
pub fn parse(toks: Vec<Token>) -> Result<Program, LangError> {
    let mut p = P { toks, pos: 0 };
    let mut streams = Vec::new();
    let mut stmts = Vec::new();
    while p.peek().is_some() {
        match p.peek() {
            Some(Token::Ident(k)) if k == "stream" => {
                p.next();
                let name = p.ident()?;
                p.expect(&Token::LParen)?;
                let mut fields = Vec::new();
                loop {
                    match p.next() {
                        Some(Token::Ident(f)) => fields.push(f),
                        Some(Token::RParen) => break,
                        Some(Token::Comma) => {}
                        other => {
                            return Err(LangError::new(format!(
                                "bad stream declaration near {other:?}"
                            )))
                        }
                    }
                }
                p.expect(&Token::Semi)?;
                streams.push((name, fields));
            }
            _ => stmts.push(statement(&mut p)?),
        }
    }
    if stmts.is_empty() {
        return Err(LangError::new("program has no pipeline statements"));
    }
    Ok(Program { streams, stmts })
}

fn statement(p: &mut P) -> Result<Stmt, LangError> {
    let name = p.ident()?;
    p.expect(&Token::Assign)?;
    let func = p.ident()?;
    p.expect(&Token::LParen)?;
    let mut args = Vec::new();
    if p.peek() != Some(&Token::RParen) {
        loop {
            args.push(argument(p)?);
            match p.next() {
                Some(Token::Comma) => {}
                Some(Token::RParen) => break,
                other => return Err(LangError::new(format!("expected , or ), found {other:?}"))),
            }
        }
    } else {
        p.next();
    }
    let mut stmt = Stmt {
        name,
        call: Call { func, args },
        window_range: None,
        window_slide: None,
        tuple_window: false,
        group_by: None,
        group_cap: None,
        feed_policy: None,
    };
    // Optional trailing clauses, in any order:
    // `window <dur> [slide <dur>]` / `every <dur>` /
    // `group by <field> [cap <n>]` / `feed policy <name> [<n>]`.
    while let Some(Token::Ident(k)) = p.peek() {
        match k.as_str() {
            "window" | "every" => {
                p.next();
                let (v, tuples) = duration(p)?;
                stmt.window_range = Some(v);
                stmt.tuple_window = tuples;
            }
            "slide" => {
                p.next();
                let (v, tuples) = duration(p)?;
                if tuples != stmt.tuple_window {
                    return Err(LangError::new("mixed time and tuple window units"));
                }
                stmt.window_slide = Some(v);
            }
            "group" => {
                p.next();
                match p.next() {
                    Some(Token::Ident(by)) if by == "by" => {}
                    other => {
                        return Err(LangError::new(format!(
                            "expected `by` after `group`, found {other:?}"
                        )))
                    }
                }
                if stmt.group_by.is_some() {
                    return Err(LangError::new("duplicate group by clause"));
                }
                stmt.group_by = Some(p.ident()?);
                if let Some(Token::Ident(c)) = p.peek() {
                    if c == "cap" {
                        p.next();
                        match p.next() {
                            Some(Token::Number(n)) if n >= 1.0 => stmt.group_cap = Some(n as usize),
                            other => {
                                return Err(LangError::new(format!(
                                    "expected positive key cap, found {other:?}"
                                )))
                            }
                        }
                    }
                }
            }
            "feed" => {
                p.next();
                match p.next() {
                    Some(Token::Ident(pw)) if pw == "policy" => {}
                    other => {
                        return Err(LangError::new(format!(
                            "expected `policy` after `feed`, found {other:?}"
                        )))
                    }
                }
                if stmt.feed_policy.is_some() {
                    return Err(LangError::new("duplicate feed policy clause"));
                }
                let name = p.ident()?;
                let mut param = None;
                if let Some(Token::Number(n)) = p.peek() {
                    param = Some(*n);
                    p.next();
                }
                stmt.feed_policy = Some((name, param));
            }
            _ => break,
        }
    }
    match p.next() {
        Some(Token::Semi) | None => Ok(stmt),
        other => Err(LangError::new(format!("expected ; found {other:?}"))),
    }
}

fn argument(p: &mut P) -> Result<Arg, LangError> {
    match p.next() {
        Some(Token::Number(n)) => Ok(Arg::Number(n)),
        Some(Token::Ident(name)) => {
            // Possibly a comparison: `name == 42`.
            let op = match p.peek() {
                Some(Token::EqEq) => Some(CmpTok::Eq),
                Some(Token::NotEq) => Some(CmpTok::Ne),
                Some(Token::Lt) => Some(CmpTok::Lt),
                Some(Token::Le) => Some(CmpTok::Le),
                Some(Token::Gt) => Some(CmpTok::Gt),
                Some(Token::Ge) => Some(CmpTok::Ge),
                _ => None,
            };
            if let Some(op) = op {
                p.next();
                match p.next() {
                    Some(Token::Number(v)) => Ok(Arg::Compare { field: name, op, value: v }),
                    other => Err(LangError::new(format!(
                        "expected number after comparison, found {other:?}"
                    ))),
                }
            } else {
                Ok(Arg::Name(name))
            }
        }
        other => Err(LangError::new(format!("bad argument near {other:?}"))),
    }
}

/// Parses `Number Ident` durations: `5 s`, `200 ms`, `2 m`, `10 t[uples]`.
/// Returns (µs or tuple count, is_tuple_window).
fn duration(p: &mut P) -> Result<(u64, bool), LangError> {
    let n = match p.next() {
        Some(Token::Number(n)) if n > 0.0 => n,
        other => return Err(LangError::new(format!("expected duration, found {other:?}"))),
    };
    match p.next() {
        Some(Token::Ident(u)) => match u.as_str() {
            "ms" => Ok(((n * 1_000.0) as u64, false)),
            "s" => Ok(((n * 1_000_000.0) as u64, false)),
            "m" | "min" => Ok(((n * 60_000_000.0) as u64, false)),
            "t" | "tuples" => Ok((n as u64, true)),
            other => Err(LangError::new(format!("unknown duration unit {other:?}"))),
        },
        other => Err(LangError::new(format!("expected duration unit, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_str(s: &str) -> Result<Program, LangError> {
        parse(lex(s)?)
    }

    #[test]
    fn parses_three_line_wifi_query() {
        let p = parse_str(
            "stream wifi(rssi, x, y);\n\
             frames = select(wifi, key == 7);\n\
             loud = topk(frames, 3, rssi) window 1s;\n\
             position = trilat(loud);",
        )
        .unwrap();
        assert_eq!(p.streams, vec![("wifi".into(), vec!["rssi".into(), "x".into(), "y".into()])]);
        assert_eq!(p.stmts.len(), 3);
        assert_eq!(p.stmts[1].call.func, "topk");
        assert_eq!(p.stmts[1].window_range, Some(1_000_000));
        assert_eq!(p.stmts[2].name, "position");
    }

    #[test]
    fn window_with_slide() {
        let p = parse_str("x = sum(s, v) window 20s slide 10s;").unwrap();
        assert_eq!(p.stmts[0].window_range, Some(20_000_000));
        assert_eq!(p.stmts[0].window_slide, Some(10_000_000));
        assert!(!p.stmts[0].tuple_window);
    }

    #[test]
    fn tuple_windows() {
        let p = parse_str("x = avg(s, v) window 20 t slide 10 t;").unwrap();
        assert!(p.stmts[0].tuple_window);
        assert_eq!(p.stmts[0].window_range, Some(20));
        assert_eq!(p.stmts[0].window_slide, Some(10));
    }

    #[test]
    fn every_is_tumbling() {
        let p = parse_str("x = count(s) every 5s;").unwrap();
        assert_eq!(p.stmts[0].window_range, Some(5_000_000));
        assert_eq!(p.stmts[0].window_slide, None);
    }

    #[test]
    fn group_by_clause() {
        let p = parse_str("x = sum(s, v) group by key window 10s;").unwrap();
        assert_eq!(p.stmts[0].group_by.as_deref(), Some("key"));
        assert_eq!(p.stmts[0].group_cap, None);
        assert_eq!(p.stmts[0].window_range, Some(10_000_000));
        // Clause order is free; `cap` bounds distinct keys.
        let p = parse_str("x = count(s) window 5s group by svc cap 64;").unwrap();
        assert_eq!(p.stmts[0].group_by.as_deref(), Some("svc"));
        assert_eq!(p.stmts[0].group_cap, Some(64));
        assert!(parse_str("x = count(s) group key;").is_err());
        assert!(parse_str("x = count(s) group by k cap 0;").is_err());
        assert!(parse_str("x = count(s) group by a group by b;").is_err());
    }

    #[test]
    fn feed_policy_clause() {
        let p = parse_str("x = sum(s, v) every 1s feed policy shed 64;").unwrap();
        assert_eq!(p.stmts[0].feed_policy, Some(("shed".into(), Some(64.0))));
        assert_eq!(p.stmts[0].window_range, Some(1_000_000));
        // Clause order is free; the parameter is optional.
        let p = parse_str("x = sum(s, v) feed policy backpressure window 5s;").unwrap();
        assert_eq!(p.stmts[0].feed_policy, Some(("backpressure".into(), None)));
        assert_eq!(p.stmts[0].window_range, Some(5_000_000));
        assert!(parse_str("x = sum(s, v) feed shed 64;").is_err());
        assert!(parse_str("x = sum(s, v) feed policy shed 1 feed policy shed 2;").is_err());
    }

    #[test]
    fn comparison_arguments() {
        let p = parse_str("f = select(w, rssi > -70);").unwrap();
        match &p.stmts[0].call.args[1] {
            Arg::Compare { field, op, value } => {
                assert_eq!(field, "rssi");
                assert_eq!(*op, CmpTok::Gt);
                assert_eq!(*value, -70.0);
            }
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_str("x = ;").is_err());
        assert!(parse_str("x = f(").is_err());
        assert!(parse_str("x = f(a) window 5 parsec;").is_err());
        assert!(parse_str("x = f(a) window 20s slide 10 t;").is_err());
        assert!(parse_str("").is_err());
    }
}
