//! Property-based tests for the Mortar Stream Language front end.

use mortar_core::window::WindowSpec;
use mortar_lang::{compile, lex};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(src in "[ -~\\n]{0,200}") {
        // Arbitrary printable ASCII: the lexer may reject, never panic.
        let _ = lex(&src);
    }

    #[test]
    fn compiler_never_panics_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("stream".to_string()),
                Just("select".to_string()),
                Just("sum".to_string()),
                Just("window".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("==".to_string()),
                Just("1".to_string()),
                Just("s".to_string()),
                Just("x".to_string()),
            ],
            0..30,
        ),
    ) {
        let src = words.join(" ");
        let _ = compile(&src);
    }

    #[test]
    fn window_clause_round_trips(range_s in 1u64..120, slide_s in 1u64..120) {
        let (range, slide) = (range_s.max(slide_s), range_s.min(slide_s));
        let src = format!(
            "stream s(v);\nq = sum(s, v) window {range} s slide {slide} s;"
        );
        let def = compile(&src).unwrap();
        prop_assert_eq!(
            def.window,
            WindowSpec::time_sliding_us(range * 1_000_000, slide * 1_000_000)
        );
    }

    #[test]
    fn field_indices_resolve_in_declaration_order(idx in 0usize..5) {
        let fields = ["a", "b", "c", "d", "e"];
        let src = format!(
            "stream s({});\nq = sum(s, {});",
            fields.join(", "),
            fields[idx]
        );
        let def = compile(&src).unwrap();
        prop_assert_eq!(def.op, mortar_core::OpKind::Sum { field: idx });
    }

    #[test]
    fn key_predicates_compile(key in 0u64..1_000_000) {
        let src = format!(
            "stream s(v);\nf = select(s, key == {key});\nq = count(f);"
        );
        let def = compile(&src).unwrap();
        prop_assert_eq!(def.filter, Some(mortar_core::op::Predicate::KeyEq(key)));
    }
}
