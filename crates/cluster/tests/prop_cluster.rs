//! Property-based tests for k-means / X-means.

use mortar_cluster::{dist2, kmeans, nearest_to, xmeans, Point, XMeansConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| vec![x, y]), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kmeans_output_is_well_formed(points in arb_points(), k in 1usize..8, seed in 0u64..100) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let c = kmeans(&points, k, 30, &mut rng);
        prop_assert_eq!(c.assignments.len(), points.len());
        prop_assert!(c.k >= 1 && c.k <= k.min(points.len()));
        for &a in &c.assignments {
            prop_assert!(a < c.k);
        }
        // No empty clusters.
        for cl in 0..c.k {
            prop_assert!(c.assignments.contains(&cl), "cluster {cl} empty");
        }
    }

    #[test]
    fn kmeans_assigns_to_nearest_centroid(points in arb_points(), seed in 0u64..100) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let c = kmeans(&points, 3, 50, &mut rng);
        for (p, &a) in points.iter().zip(&c.assignments) {
            let mine = dist2(p, &c.centroids[a]);
            for other in 0..c.k {
                prop_assert!(
                    mine <= dist2(p, &c.centroids[other]) + 1e-9,
                    "point not assigned to nearest centroid"
                );
            }
        }
    }

    #[test]
    fn xmeans_respects_bounds(points in arb_points(), kmax in 1usize..10, seed in 0u64..100) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = XMeansConfig { k_min: 1, k_max: kmax, max_iter: 20 };
        let c = xmeans(&points, &cfg, &mut rng);
        prop_assert!(c.k >= 1 && c.k <= kmax.min(points.len()));
        prop_assert_eq!(c.assignments.len(), points.len());
    }

    #[test]
    fn nearest_to_is_argmin(points in arb_points(), tx in 0.0f64..100.0, ty in 0.0f64..100.0) {
        let target = vec![tx, ty];
        let i = nearest_to(&points, &target).unwrap();
        for p in &points {
            prop_assert!(dist2(&points[i], &target) <= dist2(p, &target) + 1e-9);
        }
    }
}
