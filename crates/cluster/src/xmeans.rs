//! X-means: k-means with BIC-driven model selection.
//!
//! Starting from `k_min` clusters, each cluster is tentatively split in two;
//! the split is kept if it improves the BIC of that region. Iterates until no
//! split helps or `k_max` is reached (Pelleg & Moore, ICML 2000).

use crate::bic::bic_score;
use crate::kmeans::{kmeans, Clustering};
use crate::Point;
use rand::Rng;

/// X-means parameters.
#[derive(Debug, Clone, Copy)]
pub struct XMeansConfig {
    /// Initial number of clusters.
    pub k_min: usize,
    /// Upper bound on clusters.
    pub k_max: usize,
    /// Lloyd iterations per (sub-)clustering.
    pub max_iter: usize,
}

impl Default for XMeansConfig {
    fn default() -> Self {
        Self { k_min: 1, k_max: 16, max_iter: 50 }
    }
}

/// Runs X-means over `points`.
pub fn xmeans<R: Rng + ?Sized>(points: &[Point], cfg: &XMeansConfig, rng: &mut R) -> Clustering {
    assert!(!points.is_empty(), "xmeans requires at least one point");
    assert!(cfg.k_min >= 1 && cfg.k_max >= cfg.k_min, "invalid k range");
    let mut current = kmeans(points, cfg.k_min, cfg.max_iter, rng);
    loop {
        if current.k >= cfg.k_max {
            return current;
        }
        let mut new_centroids: Vec<Point> = Vec::new();
        let mut any_split = false;
        for c in 0..current.k {
            let member_idx = current.members(c);
            let members: Vec<Point> = member_idx.iter().map(|&i| points[i].clone()).collect();
            if members.len() < 4 || current.k + new_centroids.len() > cfg.k_max + c {
                new_centroids.push(current.centroids[c].clone());
                continue;
            }
            // Score the region as one cluster vs. split in two.
            let parent_assign = vec![0usize; members.len()];
            let parent_bic =
                bic_score(&members, &parent_assign, std::slice::from_ref(&current.centroids[c]));
            let child = kmeans(&members, 2, cfg.max_iter, rng);
            let child_bic = bic_score(&members, &child.assignments, &child.centroids);
            if child.k == 2 && child_bic > parent_bic {
                new_centroids.extend(child.centroids);
                any_split = true;
            } else {
                new_centroids.push(current.centroids[c].clone());
            }
        }
        if !any_split {
            return current;
        }
        let k = new_centroids.len().min(cfg.k_max).min(points.len());
        // Refine globally with the grown centroid set as the new k.
        current = kmeans(points, k, cfg.max_iter, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn blobs(centers: &[(f64, f64)], per: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for i in 0..per {
                let dx = (i % 7) as f64 * 0.1;
                let dy = (i % 5) as f64 * 0.1;
                pts.push(vec![cx + dx, cy + dy]);
            }
        }
        pts
    }

    #[test]
    fn discovers_three_blobs() {
        let pts = blobs(&[(0.0, 0.0), (60.0, 0.0), (0.0, 60.0)], 25);
        let mut rng = SmallRng::seed_from_u64(11);
        let c = xmeans(&pts, &XMeansConfig { k_min: 1, k_max: 8, max_iter: 60 }, &mut rng);
        assert!(c.k >= 3, "found only {} clusters", c.k);
        assert!(c.k <= 5, "severely over-split: {}", c.k);
    }

    #[test]
    fn respects_k_max() {
        let pts = blobs(&[(0.0, 0.0), (60.0, 0.0), (0.0, 60.0), (60.0, 60.0)], 20);
        let mut rng = SmallRng::seed_from_u64(12);
        let c = xmeans(&pts, &XMeansConfig { k_min: 1, k_max: 2, max_iter: 40 }, &mut rng);
        assert!(c.k <= 2);
    }

    #[test]
    fn single_blob_stays_single() {
        let pts = blobs(&[(5.0, 5.0)], 30);
        let mut rng = SmallRng::seed_from_u64(13);
        let c = xmeans(&pts, &XMeansConfig::default(), &mut rng);
        assert_eq!(c.k, 1, "one tight blob should not split");
    }

    #[test]
    fn tiny_input_ok() {
        let pts = vec![vec![1.0], vec![2.0]];
        let mut rng = SmallRng::seed_from_u64(14);
        let c = xmeans(&pts, &XMeansConfig::default(), &mut rng);
        assert!(c.k >= 1 && c.k <= 2);
    }
}
