//! Bayesian Information Criterion scoring for X-means.
//!
//! Uses the spherical-Gaussian formulation from Pelleg & Moore (2000): the
//! log-likelihood of the data under a mixture of identical-variance spherical
//! Gaussians centred at the centroids, penalized by the parameter count.

use crate::{dist2, Point};

/// BIC of a clustering (higher is better).
///
/// `points` is the full dataset, `assignments[i]` the cluster of point `i`,
/// and `centroids` the cluster centres.
pub fn bic_score(points: &[Point], assignments: &[usize], centroids: &[Point]) -> f64 {
    let n = points.len();
    let k = centroids.len();
    if n == 0 || k == 0 {
        return f64::NEG_INFINITY;
    }
    let dim = points[0].len() as f64;
    // Pooled maximum-likelihood variance estimate.
    let rss: f64 = points.iter().zip(assignments).map(|(p, &a)| dist2(p, &centroids[a])).sum();
    let denom = (n.saturating_sub(k)) as f64;
    let variance = if denom > 0.0 { (rss / (denom * dim)).max(1e-12) } else { 1e-12 };

    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    let nf = n as f64;
    let mut loglik = 0.0;
    for &sz in &sizes {
        if sz == 0 {
            continue;
        }
        let rn = sz as f64;
        loglik += rn * (rn / nf).ln()
            - rn * dim / 2.0 * (2.0 * std::f64::consts::PI * variance).ln()
            - (rn - 1.0) * dim / 2.0;
    }
    // Free parameters: k-1 mixing weights, k*dim centroid coords, 1 variance.
    let params = (k as f64 - 1.0) + k as f64 * dim + 1.0;
    loglik - params / 2.0 * nf.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn blobs(centers: &[f64], per: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for (ci, &c) in centers.iter().enumerate() {
            for i in 0..per {
                // Small deterministic spread.
                pts.push(vec![c + (i as f64 % 5.0) * 0.05, (ci as f64 + i as f64 * 0.01) % 0.3]);
            }
        }
        pts
    }

    #[test]
    fn two_blob_data_prefers_two_clusters() {
        let pts = blobs(&[0.0, 50.0], 20);
        let mut rng = SmallRng::seed_from_u64(3);
        let c1 = kmeans(&pts, 1, 100, &mut rng);
        let c2 = kmeans(&pts, 2, 100, &mut rng);
        let b1 = bic_score(&pts, &c1.assignments, &c1.centroids);
        let b2 = bic_score(&pts, &c2.assignments, &c2.centroids);
        assert!(b2 > b1, "BIC should prefer k=2: {b1} vs {b2}");
    }

    #[test]
    fn empty_input_is_neg_infinity() {
        assert_eq!(bic_score(&[], &[], &[]), f64::NEG_INFINITY);
    }

    #[test]
    fn overfitting_penalized() {
        // One tight blob: more clusters should not keep improving BIC.
        let pts = blobs(&[0.0], 30);
        let mut rng = SmallRng::seed_from_u64(4);
        let c1 = kmeans(&pts, 1, 100, &mut rng);
        let c5 = kmeans(&pts, 5, 100, &mut rng);
        let b1 = bic_score(&pts, &c1.assignments, &c1.centroids);
        let b5 = bic_score(&pts, &c5.assignments, &c5.centroids);
        assert!(b1 > b5, "BIC should penalize overfitting: {b1} vs {b5}");
    }
}
