//! Lloyd's algorithm with k-means++ seeding.

use crate::{dist2, Point};
use rand::Rng;

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Cluster centers.
    pub centroids: Vec<Point>,
    /// Number of clusters actually produced (≤ requested `k`).
    pub k: usize,
}

impl Clustering {
    /// Indices of the points in cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments.iter().enumerate().filter_map(|(i, &a)| (a == c).then_some(i)).collect()
    }

    /// Total within-cluster sum of squared distances.
    pub fn inertia(&self, points: &[Point]) -> f64 {
        points.iter().zip(&self.assignments).map(|(p, &a)| dist2(p, &self.centroids[a])).sum()
    }
}

/// k-means++ initial centroid selection.
fn seed_centroids<R: Rng + ?Sized>(points: &[Point], k: usize, rng: &mut R) -> Vec<Point> {
    let mut centroids: Vec<Point> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with existing centroids; pick arbitrarily.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = points.len() - 1;
            for (i, w) in d2.iter().enumerate() {
                if target <= *w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, centroids.last().expect("just pushed")));
        }
    }
    centroids
}

/// Clusters `points` into at most `k` groups.
///
/// Returns fewer than `k` clusters if there are fewer distinct points.
/// Empty clusters arising during iteration are re-seeded from the point
/// farthest from its centroid, so the output never contains empty clusters.
pub fn kmeans<R: Rng + ?Sized>(
    points: &[Point],
    k: usize,
    max_iter: usize,
    rng: &mut R,
) -> Clustering {
    assert!(!points.is_empty(), "kmeans requires at least one point");
    let k = k.clamp(1, points.len());
    let mut centroids = seed_centroids(points, k, rng);
    let mut assignments = vec![0usize; points.len()];
    for _ in 0..max_iter {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(p, &centroids[a])
                        .partial_cmp(&dist2(p, &centroids[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Recompute centroids; re-seed empties from the worst-fit point.
        let dim = points[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let far = (0..points.len())
                    .max_by(|&a, &b| {
                        dist2(&points[a], &centroids[assignments[a]])
                            .partial_cmp(&dist2(&points[b], &centroids[assignments[b]]))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("points nonempty");
                centroids[c] = points[far].clone();
                assignments[far] = c;
                changed = true;
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Clustering { assignments, centroids, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            pts.push(vec![100.0 + i as f64 * 0.01, 0.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let mut rng = SmallRng::seed_from_u64(5);
        let c = kmeans(&pts, 2, 100, &mut rng);
        assert_eq!(c.k, 2);
        // Points 0,2,4.. are one blob (even indices), 1,3,5.. the other.
        let a0 = c.assignments[0];
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(c.assignments[i], a0);
        }
        for i in (1..pts.len()).step_by(2) {
            assert_ne!(c.assignments[i], a0);
        }
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![1.0], vec![2.0]];
        let mut rng = SmallRng::seed_from_u64(1);
        let c = kmeans(&pts, 10, 10, &mut rng);
        assert!(c.k <= 2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let mut rng = SmallRng::seed_from_u64(1);
        let c = kmeans(&pts, 1, 10, &mut rng);
        assert!((c.centroids[0][0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_empty_clusters() {
        let pts = two_blobs();
        for seed in 0..10 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let c = kmeans(&pts, 4, 50, &mut rng);
            for cl in 0..c.k {
                assert!(!c.members(cl).is_empty(), "cluster {cl} empty (seed {seed})");
            }
        }
    }

    #[test]
    fn identical_points_dont_panic() {
        let pts = vec![vec![3.0, 3.0]; 8];
        let mut rng = SmallRng::seed_from_u64(2);
        let c = kmeans(&pts, 3, 20, &mut rng);
        assert_eq!(c.assignments.len(), 8);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = two_blobs();
        let mut rng = SmallRng::seed_from_u64(8);
        let c1 = kmeans(&pts, 1, 100, &mut rng);
        let c2 = kmeans(&pts, 2, 100, &mut rng);
        assert!(c2.inertia(&pts) < c1.inertia(&pts));
    }
}
