//! K-means and X-means clustering.
//!
//! Mortar's planner "invokes a clustering algorithm that builds full trees
//! with a particular branching factor", using X-means (Pelleg & Moore, ICML
//! 2000) to cluster network coordinates (Section 3.1 / Section 7). This crate
//! implements Lloyd's k-means with k-means++ seeding and X-means with
//! BIC-scored cluster splitting.
//!
//! # Examples
//!
//! ```
//! use mortar_cluster::{kmeans, Point};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let pts: Vec<Point> = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.2], vec![0.2, 0.1],
//!     vec![9.0, 9.0], vec![9.1, 8.8], vec![8.8, 9.2],
//! ];
//! let mut rng = SmallRng::seed_from_u64(1);
//! let c = kmeans(&pts, 2, 50, &mut rng);
//! assert_eq!(c.k, 2);
//! assert_eq!(c.assignments[0], c.assignments[1]);
//! assert_ne!(c.assignments[0], c.assignments[3]);
//! ```

pub mod bic;
pub mod kmeans;
pub mod xmeans;

pub use bic::bic_score;
pub use kmeans::{kmeans, Clustering};
pub use xmeans::{xmeans, XMeansConfig};

/// A point in coordinate space (row of the dataset).
pub type Point = Vec<f64>;

/// Squared Euclidean distance between two points.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "point dims differ");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index (within `candidates`) of the candidate point nearest to `target`.
///
/// The planner uses this to place an operator on the *actual peer* closest to
/// a cluster centroid.
pub fn nearest_to(candidates: &[Point], target: &[f64]) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            dist2(a, target).partial_cmp(&dist2(b, target)).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_is_squared_euclidean() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn nearest_to_picks_closest() {
        let pts = vec![vec![0.0], vec![5.0], vec![9.0]];
        assert_eq!(nearest_to(&pts, &[6.0]), Some(1));
        assert_eq!(nearest_to(&pts, &[100.0]), Some(2));
        assert_eq!(nearest_to(&[], &[0.0]), None);
    }
}
