//! Criterion micro-benchmarks of Mortar's core data structures: TS-list
//! insert/evict, the routing-policy decision, sibling derivation, k-means,
//! Vivaldi rounds, and the reconciliation hash.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mortar_cluster::kmeans;
use mortar_coords::VivaldiSystem;
use mortar_core::tslist::{summary, TimeSpaceList};
use mortar_core::value::AggState;
use mortar_overlay::planner::{derive_sibling, plan_primary};
use mortar_overlay::{route_decision, RouteState, TreeSet};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_tslist(c: &mut Criterion) {
    c.bench_function("tslist/insert_exact_match", |b| {
        let mut ts = TimeSpaceList::new();
        ts.insert(&summary(0, 1_000, AggState::Sum(0.0), 1, 0), 0, 1_000_000);
        let s = summary(0, 1_000, AggState::Sum(1.0), 1, 0);
        b.iter(|| ts.insert(black_box(&s), 100, 1_000_000));
    });
    c.bench_function("tslist/insert_disjoint_64", |b| {
        b.iter_batched(
            TimeSpaceList::new,
            |mut ts| {
                for k in 0..64i64 {
                    ts.insert(
                        &summary(k * 10, k * 10 + 10, AggState::Sum(1.0), 1, 0),
                        0,
                        1_000_000,
                    );
                }
                ts
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("tslist/split_partial_overlap", |b| {
        b.iter_batched(
            || {
                let mut ts = TimeSpaceList::new();
                ts.insert(&summary(0, 100, AggState::Sum(1.0), 1, 0), 0, 1_000_000);
                ts
            },
            |mut ts| ts.insert(&summary(50, 150, AggState::Sum(2.0), 1, 0), 0, 1_000_000),
            BatchSize::SmallInput,
        );
    });
    c.bench_function("tslist/splice_spanning_8_of_64", |b| {
        // An incoming tuple overlapping 8 of 64 entries: the splice path
        // must touch only the overlapped range, leaving the other 56
        // entries in place (the old drain-rebuild-sort path moved and
        // re-sorted all of them per insert).
        b.iter_batched(
            || {
                let mut ts = TimeSpaceList::new();
                for k in 0..64i64 {
                    ts.insert(
                        &summary(k * 10, k * 10 + 10, AggState::Sum(1.0), 1, 0),
                        0,
                        1_000_000,
                    );
                }
                ts
            },
            |mut ts| {
                // Spans entries 28..36 with half-entry offsets on both
                // ends: head/tail slices plus moved-merge overlaps.
                ts.insert(&summary(285, 355, AggState::Sum(2.0), 1, 0), 0, 1_000_000);
                ts
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("tslist/splice_gap_insert_mid_64", |b| {
        // A non-overlapping insert into the middle of a long list: one
        // ordered `Vec::insert`, no rebuild.
        b.iter_batched(
            || {
                let mut ts = TimeSpaceList::new();
                for k in 0..64i64 {
                    ts.insert(
                        &summary(k * 20, k * 20 + 10, AggState::Sum(1.0), 1, 0),
                        0,
                        1_000_000,
                    );
                }
                ts
            },
            |mut ts| {
                ts.insert(&summary(615, 620, AggState::Sum(2.0), 1, 0), 0, 1_000_000);
                ts
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("tslist/pop_due_64", |b| {
        b.iter_batched(
            || {
                let mut ts = TimeSpaceList::new();
                for k in 0..64i64 {
                    ts.insert(&summary(k * 10, k * 10 + 10, AggState::Sum(1.0), 1, 0), 0, 50);
                }
                ts
            },
            |mut ts| ts.pop_due(1_000_000),
            BatchSize::SmallInput,
        );
    });
}

fn bench_routing(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let coords: Vec<Vec<f64>> = (0..512).map(|i| vec![(i % 23) as f64, (i / 23) as f64]).collect();
    let primary = plan_primary(&coords, 0, 16, 20, &mut rng);
    let trees = TreeSet::new(vec![
        primary.clone(),
        derive_sibling(&primary, &mut rng),
        derive_sibling(&primary, &mut rng),
        derive_sibling(&primary, &mut rng),
    ]);
    c.bench_function("routing/decision_all_live", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let mut st = RouteState::at_origin(&trees, 300);
            route_decision(
                &trees,
                black_box(300),
                0,
                &mut st,
                &[true, true, true, true],
                &mut |_, _| true,
                &mut rng,
            )
        });
    });
    c.bench_function("routing/decision_failover", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            let mut st = RouteState::at_origin(&trees, 300);
            route_decision(
                &trees,
                black_box(300),
                0,
                &mut st,
                &[false, false, true, true],
                &mut |_, _| true,
                &mut rng,
            )
        });
    });
}

fn bench_planning(c: &mut Criterion) {
    let coords: Vec<Vec<f64>> =
        (0..512).map(|i| vec![(i % 23) as f64 * 10.0, (i / 23) as f64 * 10.0]).collect();
    c.bench_function("planner/primary_512_bf16", |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        b.iter(|| plan_primary(black_box(&coords), 0, 16, 20, &mut rng));
    });
    c.bench_function("planner/sibling_512", |b| {
        let mut rng = SmallRng::seed_from_u64(5);
        let primary = plan_primary(&coords, 0, 16, 20, &mut rng);
        b.iter(|| derive_sibling(black_box(&primary), &mut rng));
    });
    c.bench_function("cluster/kmeans_512x2_k16", |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        b.iter(|| kmeans(black_box(&coords), 16, 20, &mut rng));
    });
}

fn bench_vivaldi(c: &mut Criterion) {
    let n = 256;
    let lat: Vec<Vec<f64>> =
        (0..n).map(|a| (0..n).map(|b| ((a as f64) - (b as f64)).abs() + 1.0).collect()).collect();
    c.bench_function("vivaldi/round_256x8", |b| {
        let mut sys = VivaldiSystem::new(n, 3, 7);
        b.iter(|| sys.round(black_box(&lat), 8));
    });
}

fn bench_reconcile(c: &mut Criterion) {
    use mortar_core::reconcile::store_hash;
    let entries: Vec<(String, u64)> = (0..100).map(|i| (format!("query-{i}"), i as u64)).collect();
    c.bench_function("reconcile/store_hash_100", |b| {
        b.iter(|| store_hash(black_box(&entries).iter().map(|(n, s)| (n.as_str(), *s))));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tslist, bench_routing, bench_planning, bench_vivaldi, bench_reconcile
);
criterion_main!(benches);
