//! Ablations of Mortar's design choices (DESIGN.md §6):
//!
//! 1. **TTL-down budget** — how many stage-4 descents dynamic striping may
//!    take (the paper fixes 3; stage 4 disabled = strictly-upward routing).
//! 2. **Sibling derivation vs. alternatives** — random rotations (Mortar)
//!    vs. fully random sibling trees vs. duplicating the primary, measured
//!    as union-graph completeness under failures.
//! 3. **Reconciliation period** — heartbeats per reconciliation vs. time to
//!    repair a partially failed install.

use mortar_bench::{banner, header, row, scaled};
use mortar_core::engine::Engine;
use mortar_core::engine::EngineConfig;
use mortar_core::op::OpKind;
use mortar_core::query::{QuerySpec, SensorSpec};
use mortar_core::window::WindowSpec;
use mortar_net::NodeId;
use mortar_overlay::{simulate_completeness, FailureSimConfig, Strategy};

fn ttl_down_sweep() {
    banner("Ablation A", "TTL-down budget for flex-down routing (Figure 5 stage 4)");
    let cfg = FailureSimConfig {
        nodes: scaled(2_000, 10_000),
        branching_factor: 32,
        trials: scaled(40, 200),
        seed: 9,
        ttl_down: 0,
    };
    let levels = [0.1, 0.2, 0.3, 0.4];
    header(
        "completeness (%)",
        &levels.iter().map(|l| format!("{:.0}%", l * 100.0)).collect::<Vec<_>>(),
    );
    for ttl in [0u32, 1, 3, 5] {
        let c = FailureSimConfig { ttl_down: ttl, ..cfg };
        let cells: Vec<f64> = levels
            .iter()
            .map(|&p| simulate_completeness(&c, Strategy::DynamicStriping { d: 4 }, p))
            .collect();
        row(&format!("ttl-down = {ttl}"), &cells);
    }
    println!("expected: most of the benefit arrives by ttl-down = 3 (the paper's limit).");
}

fn sibling_quality() {
    banner("Ablation B", "sibling derivation: rotations vs. random vs. duplicated primary");
    use mortar_overlay::planner::{derive_sibling, percentile, plan_primary, root_latencies};
    use mortar_overlay::tree::{random_tree, Tree, TreeSet};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let n = 400;
    let mut rng = SmallRng::seed_from_u64(77);
    // Clustered coordinates.
    let coords: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                ((i % 8) as f64) * 30.0 + (i as f64 * 0.37) % 5.0,
                ((i / 8 % 8) as f64) * 30.0 + (i as f64 * 0.61) % 5.0,
            ]
        })
        .collect();
    let lat: Vec<Vec<f64>> = (0..n)
        .map(|a| {
            (0..n)
                .map(|b| {
                    coords[a]
                        .iter()
                        .zip(&coords[b])
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        .sqrt()
                })
                .collect()
        })
        .collect();
    let primary = plan_primary(&coords, 0, 16, 25, &mut rng);
    let make_set = |kind: &str, rng: &mut SmallRng| -> TreeSet {
        let mut trees: Vec<Tree> = vec![primary.clone()];
        for _ in 0..3 {
            trees.push(match kind {
                "rotated" => derive_sibling(&primary, rng),
                "random" => random_tree(n, 0, 16, rng),
                _ => primary.clone(),
            });
        }
        TreeSet::new(trees)
    };
    header("", &["p90 lat".into(), "div@30%".into()]);
    for kind in ["rotated", "random", "duplicated"] {
        let set = make_set(kind, &mut rng);
        // Latency of the worst tree in the set (network awareness).
        let p90 = set
            .trees()
            .iter()
            .map(|t| percentile(&root_latencies(t, &lat), 0.9))
            .fold(0.0f64, f64::max);
        // Path diversity: union-graph survival at 30% link failures.
        let div = union_survival(&set, 0.3, 40, &mut rng);
        row(kind, &[p90, div]);
    }
    println!(
        "expected: rotated siblings keep planned latency AND near-random \
         diversity;\nrandom siblings lose network-awareness; duplicated trees \
         lose diversity."
    );
}

/// Fraction (%) of live members connected to the root in the union of tree
/// edges after *node* failures (a failed node is failed in every tree —
/// which is exactly why duplicating the primary buys no diversity).
fn union_survival(
    set: &mortar_overlay::TreeSet,
    p: f64,
    trials: usize,
    rng: &mut impl rand::Rng,
) -> f64 {
    let n = set.len();
    let mut reached = 0usize;
    let mut live_total = 0usize;
    for _ in 0..trials {
        let alive: Vec<bool> = (0..n).map(|m| m == set.root() || rng.gen::<f64>() >= p).collect();
        // BFS from the root over edges between live nodes.
        let mut seen = vec![false; n];
        let mut stack = vec![set.root()];
        seen[set.root()] = true;
        while let Some(u) = stack.pop() {
            for tree in set.trees() {
                for &c in tree.children(u) {
                    if alive[c] && !seen[c] {
                        seen[c] = true;
                        stack.push(c);
                    }
                }
                // The union graph is traversable both ways (flex-down).
                if let Some(par) = tree.parent(u) {
                    if alive[par] && !seen[par] {
                        seen[par] = true;
                        stack.push(par);
                    }
                }
            }
        }
        reached += seen.iter().filter(|&&s| s).count();
        live_total += alive.iter().filter(|&&a| a).count();
    }
    100.0 * reached as f64 / live_total as f64
}

fn reconcile_period() {
    banner("Ablation C", "reconciliation period vs. install repair time");
    let n = scaled(120, 300);
    header("", &["t50 (s)".into(), "t95 (s)".into()]);
    for every in [1u32, 3, 6] {
        let mut cfg = EngineConfig::paper(n, 55);
        cfg.plan_on_true_latency = true;
        cfg.peer.reconcile_every = every;
        let mut eng = Engine::new(cfg).expect("valid config");
        let down = eng.disconnect_random(0.4, 0);
        eng.install(QuerySpec {
            name: "q".into(),
            root: 0,
            members: (0..n as NodeId).collect(),
            op: OpKind::Sum { field: 0 },
            window: WindowSpec::time_tumbling_us(1_000_000),
            filter: None,
            sensor: SensorSpec::Periodic { period_us: 1_000_000, value: 1.0 },
            post: None,
        })
        .expect("valid spec");
        eng.run_secs(10.0);
        eng.reconnect(&down);
        let (mut t50, mut t95) = (f64::NAN, f64::NAN);
        for step in 0..40 {
            eng.run_secs(2.0);
            let frac = eng.installed_count("q") as f64 / n as f64;
            let t = 10.0 + 2.0 * (step + 1) as f64;
            if frac >= 0.5 && t50.is_nan() {
                t50 = t;
            }
            if frac >= 0.95 && t95.is_nan() {
                t95 = t;
                break;
            }
        }
        row(&format!("reconcile every {every} hb"), &[t50, t95]);
    }
    println!("expected: faster reconciliation repairs faster, at more control traffic.");
}

fn main() {
    ttl_down_sweep();
    sibling_quality();
    reconcile_period();
}
