//! Regenerates the paper figure; see `mortar_bench::experiments::fig16`.
fn main() {
    mortar_bench::experiments::fig16::run();
}
