//! Regenerates the paper figure; see `mortar_bench::experiments::fig13`.
fn main() {
    mortar_bench::experiments::fig13::run();
}
