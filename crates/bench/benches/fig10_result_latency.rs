//! Regenerates Figure 10; see `mortar_bench::experiments::fig0910`.
fn main() {
    mortar_bench::experiments::fig0910::run_fig10();
}
