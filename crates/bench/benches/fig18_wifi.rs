//! Regenerates the paper figure; see `mortar_bench::experiments::fig18`.
fn main() {
    mortar_bench::experiments::fig18::run();
}
