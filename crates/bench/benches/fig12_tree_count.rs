//! Regenerates the paper figure; see `mortar_bench::experiments::fig12`.
fn main() {
    mortar_bench::experiments::fig12::run();
}
