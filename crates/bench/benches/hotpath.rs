//! End-to-end wall-clock throughput of the summary data path; emits
//! `BENCH_hotpath.json` at the repo root. See `experiments::hotpath`.
//!
//! This binary installs the counting allocator so the harness can prove
//! the steady-state idle tick allocation-free (`allocs_per_sim_sec`).

#[global_allocator]
static ALLOC: mortar_bench::alloc_probe::CountingAlloc = mortar_bench::alloc_probe::CountingAlloc;

fn main() {
    mortar_bench::experiments::hotpath::run();
}
