//! End-to-end wall-clock throughput of the summary data path; emits
//! `BENCH_hotpath.json` at the repo root. See `experiments::hotpath`.

fn main() {
    mortar_bench::experiments::hotpath::run();
}
