//! Regenerates the paper figure; see `mortar_bench::experiments::fig01`.
fn main() {
    mortar_bench::experiments::fig01::run();
}
