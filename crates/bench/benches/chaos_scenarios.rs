//! Chaos scenario sweep plus the digest-vs-full-map anti-entropy
//! head-to-head; emits `BENCH_chaos.json` at the repo root. See
//! `experiments::chaos`.

fn main() {
    mortar_bench::experiments::chaos::run();
}
