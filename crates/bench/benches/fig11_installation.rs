//! Regenerates the paper figure; see `mortar_bench::experiments::fig11`.
fn main() {
    mortar_bench::experiments::fig11::run();
}
