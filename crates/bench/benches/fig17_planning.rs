//! Regenerates the paper figure; see `mortar_bench::experiments::fig17`.
fn main() {
    mortar_bench::experiments::fig17::run();
}
