//! Regenerates Figure 15; see `mortar_bench::experiments::fig14`.
fn main() {
    mortar_bench::experiments::fig14::run_fig15();
}
