//! Intake-policy burst rows and the adaptive-envelope contrast; emits
//! `BENCH_feeds.json` at the repo root. See `experiments::feeds`.
//!
//! This binary installs the counting allocator so the harness can prove
//! steady-state ticks allocation-free with a drained feed installed.

#[global_allocator]
static ALLOC: mortar_bench::alloc_probe::CountingAlloc = mortar_bench::alloc_probe::CountingAlloc;

fn main() {
    mortar_bench::experiments::feeds::run();
}
