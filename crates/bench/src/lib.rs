//! Experiment harnesses regenerating every table and figure of the Mortar
//! paper's evaluation (Section 7), plus shared scaffolding.
//!
//! Each figure is a `[[bench]]` target with `harness = false`; run them all
//! with `cargo bench -p mortar-bench` or one with
//! `cargo bench --bench fig12_tree_count`. By default the harnesses run at
//! reduced scale so the whole suite finishes in minutes; set
//! `MORTAR_BENCH_FULL=1` for paper-scale runs (680 peers, 10k-node graph
//! simulations, full trial counts).
//!
//! The printed series correspond directly to the paper's plots; measured
//! values are recorded against the paper's in `EXPERIMENTS.md`.

pub mod alloc_probe;
pub mod experiments;

/// Whether full paper-scale experiments were requested.
pub fn full_scale() -> bool {
    std::env::var("MORTAR_BENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Picks `quick` or `full` depending on [`full_scale`].
pub fn scaled<T>(quick: T, full: T) -> T {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// Prints a figure banner.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
    println!(
        "    scale: {} (set MORTAR_BENCH_FULL=1 for paper scale)",
        if full_scale() { "FULL (paper)" } else { "quick" }
    );
}

/// Prints one table row of `f64` cells after a label.
pub fn row(label: &str, cells: &[f64]) {
    print!("{label:>26}");
    for c in cells {
        if c.is_nan() {
            print!("{:>9}", "-");
        } else {
            print!("{c:>9.1}");
        }
    }
    println!();
}

/// Prints a header row.
pub fn header(label: &str, cols: &[String]) {
    print!("{label:>26}");
    for c in cols {
        print!("{c:>9}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaled_picks_quick_by_default() {
        // The test environment does not set MORTAR_BENCH_FULL.
        if !super::full_scale() {
            assert_eq!(super::scaled(1, 2), 1);
        }
    }
}
