//! A counting allocator probe for the hotpath harness.
//!
//! The hotpath bench binary installs [`CountingAlloc`] as its global
//! allocator; the harness then measures heap-allocation counts across
//! regions of simulated time — most importantly the steady-state idle
//! ticks, which `BENCH_hotpath.json` pins at **zero** allocations
//! (`allocs_per_sim_sec`). The counter is thread-local, so background
//! threads cannot pollute a measurement.
//!
//! The probe is inert unless the running binary actually declared the
//! `#[global_allocator]`; callers use [`probe_active`] to distinguish
//! "zero allocations" from "not counting at all".

// One of the two sanctioned `unsafe` sites in the workspace (see
// `[workspace.lints.rust]`): implementing `GlobalAlloc` requires it.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// The system allocator with a thread-local allocation counter.
pub struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter bump performs no
// allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocations recorded on this thread so far.
pub fn allocs() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Whether the probe is actually wired in: any warm process that has done
/// real work will have allocated many times, so a zero counter means the
/// binary did not install [`CountingAlloc`].
pub fn probe_active() -> bool {
    allocs() > 0
}

/// Runs `f` and returns how many heap allocations it performed on this
/// thread.
pub fn count_allocs<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = allocs();
    let out = f();
    (allocs() - before, out)
}
