//! Figure 13: system scaling — unique heartbeat children per node as
//! queries (and nodes per query) grow (Section 7.2.1), plus the summary
//! frame-batching message-event reduction on a wide simulated run.
//!
//! Paper setup: one query rooted at every peer, each aggregating over all
//! other nodes, over a shared coordinate set. Heartbeats are shared across
//! trees and queries, so overhead scales sub-linearly: a second tree
//! roughly doubles the single-tree cost, but going from 2 to 4 trees adds
//! only ~50% more.
//!
//! The children-per-node sweep is a pure planning computation (no
//! simulation needed): we plan every query's tree set and count each
//! node's distinct children across all of them. The batching comparison
//! runs a 100-host high-rate query through the simulator twice — per-tuple
//! frames versus default batching — and reports message events.

use super::common::count_peers_spec;
use crate::{banner, header, row};
use mortar_core::engine::{Engine, EngineConfig};
use mortar_core::metrics::{mean_completeness, participants_by_index};
use mortar_core::query::SensorSpec;
use mortar_overlay::{plan_tree_set, PlannerConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet};

/// Mean unique children per node with `queries` queries over `n` nodes.
fn children_per_node(n: usize, tree_count: usize, bf: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    // A shared coordinate set (clustered, as Vivaldi output would be).
    let coords: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let cluster = rng.gen_range(0..8);
            vec![
                (cluster % 4) as f64 * 40.0 + rng.gen::<f64>() * 8.0,
                (cluster / 4) as f64 * 40.0 + rng.gen::<f64>() * 8.0,
            ]
        })
        .collect();
    let cfg = PlannerConfig { branching_factor: bf, tree_count, kmeans_iters: 15 };
    let mut children: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    // One query per peer, rooted there, aggregating over everyone.
    for root in 0..n {
        let trees = plan_tree_set(&coords, root, &cfg, &mut rng);
        for t in trees.trees() {
            for (m, kids) in children.iter_mut().enumerate().take(n) {
                kids.extend(t.children(m).iter().copied());
            }
        }
    }
    children.iter().map(HashSet::len).sum::<usize>() as f64 / n as f64
}

/// One batching run's transport and accuracy measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchingOutcome {
    /// Summary frames sent fleet-wide (data-class message events).
    pub frames: u64,
    /// Summary tuples carried by those frames.
    pub tuples: u64,
    /// Per-window-index participant sums at the root.
    pub by_index: BTreeMap<i64, u32>,
    /// Steady-state completeness (%).
    pub completeness: f64,
}

/// Runs a high-rate (25 ms slide) fleet-wide sum over `n` hosts with the
/// given frame-batching cap and returns the transport counts. Eight
/// windows close per 200 ms tick; striped round-robin over the default
/// four trees that leaves two-plus tuples per (tree, next hop) per tick —
/// the telemetry-rate regime batching targets.
pub fn batching_run(n: usize, batch_max: usize, seed: u64, secs: f64) -> BatchingOutcome {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.peer.summary_batch_max = batch_max;
    let mut eng = Engine::new(cfg).expect("valid config");
    let mut spec = count_peers_spec("fast", n, 25_000);
    spec.sensor = SensorSpec::Periodic { period_us: 25_000, value: 1.0 };
    eng.install(spec).expect("valid spec");
    eng.run_secs(secs);
    let results = eng.results(0);
    BatchingOutcome {
        frames: eng.summary_frames_sent(),
        tuples: eng.summary_tuples_sent(),
        by_index: participants_by_index(results),
        completeness: mean_completeness(results, n, 40),
    }
}

/// One envelope run's transport and accuracy measurements on the
/// multi-query regime.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeOutcome {
    /// Data-class wire messages (send events — what envelopes amortize).
    pub wire_msgs: u64,
    /// Logical summary frames (conserved across envelope budgets).
    pub frames: u64,
    /// Summary tuples carried (conserved).
    pub tuples: u64,
    /// Per-window-index participant sums at the first query's root.
    pub by_index: BTreeMap<i64, u32>,
    /// Worst steady-state completeness (%) across the queries.
    pub completeness: f64,
}

/// Figure 13's "a query rooted at every peer" regime, scaled down:
/// `queries` co-resident high-rate fleet-wide sums rooted at distinct
/// peers. With `envelope_budget > 0`, every frame a peer owes one next
/// hop in a tick — across all the queries and their tree sets — shares a
/// single wire envelope; `0` sends per-query frames.
pub fn envelope_run(
    n: usize,
    queries: usize,
    envelope_budget: u32,
    seed: u64,
    secs: f64,
) -> EnvelopeOutcome {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.peer.envelope_budget = envelope_budget;
    let mut eng = Engine::new(cfg).expect("valid config");
    let roots: Vec<mortar_net::NodeId> =
        (0..queries).map(|qi| (qi * n / queries) as mortar_net::NodeId).collect();
    for (qi, &root) in roots.iter().enumerate() {
        let mut spec = count_peers_spec(&format!("q{qi}"), n, 25_000);
        spec.root = root;
        spec.sensor = SensorSpec::Periodic { period_us: 25_000, value: 1.0 };
        eng.install(spec).expect("valid spec");
    }
    eng.run_secs(secs);
    let completeness = roots
        .iter()
        .enumerate()
        .map(|(qi, &root)| {
            let name = format!("q{qi}");
            let mine: Vec<_> =
                eng.results(root).iter().filter(|r| *r.query == name).cloned().collect();
            mean_completeness(&mine, n, 40)
        })
        .fold(f64::INFINITY, f64::min);
    let first: Vec<_> =
        eng.results(roots[0]).iter().filter(|r| &*r.query == "q0").cloned().collect();
    EnvelopeOutcome {
        wire_msgs: eng.sim.bandwidth().msgs_total(mortar_net::TrafficClass::Data),
        frames: eng.summary_frames_sent(),
        tuples: eng.summary_tuples_sent(),
        by_index: participants_by_index(&first),
        completeness,
    }
}

/// Runs the scaling sweep.
pub fn run() {
    banner("Figure 13", "unique heartbeat children per node vs. query count");
    let sizes = [25usize, 50, 100, 150, 200];
    header("children/node at N=", &sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    row("N (no sharing bound)", &sizes.map(|s| s as f64));
    for trees in [4usize, 2, 1] {
        let cells: Vec<f64> = sizes.iter().map(|&s| children_per_node(s, trees, 16, 7)).collect();
        row(&format!("{trees} trees"), &cells);
    }
    let one = children_per_node(100, 1, 16, 7);
    let two = children_per_node(100, 2, 16, 7);
    let four = children_per_node(100, 4, 16, 7);
    println!(
        "\nAt N=100: 1 tree = {one:.1}, 2 trees = {two:.1} ({:.2}x), 4 trees = \
         {four:.1} ({:.2}x over 2).\nExpected shape (paper): a sibling roughly \
         doubles the primary's overhead, but 4 trees cost only ~1.5x of 2 — \
         heartbeats are shared across queries and trees.",
        two / one,
        four / two
    );

    // Frame batching: the other axis of scaling cost — data-plane message
    // events on a wide, high-rate run.
    let n = 100;
    let per_tuple = batching_run(n, 1, 13, 30.0);
    let batched = batching_run(n, 32, 13, 30.0);
    let participants = |o: &BatchingOutcome| o.by_index.values().map(|&v| v as u64).sum::<u64>();
    println!(
        "\nSummary message events over a {n}-host 25 ms-slide sum (30 s):\n\
         per-tuple frames: {} events for {} tuples\n\
         batched (cap 32): {} events for {} tuples — {:.2}x fewer messages,\n\
         completeness {:.1}% vs {:.1}%, root participants {} vs {}",
        per_tuple.frames,
        per_tuple.tuples,
        batched.frames,
        batched.tuples,
        per_tuple.frames as f64 / batched.frames.max(1) as f64,
        batched.completeness,
        per_tuple.completeness,
        participants(&batched),
        participants(&per_tuple),
    );

    // Cross-query envelopes: the multi-query regime the figure actually
    // describes — co-resident queries rooted at distinct peers sharing
    // one wire envelope per next hop per tick.
    let queries = 3;
    let off = envelope_run(n, queries, 0, 13, 20.0);
    let on = envelope_run(n, queries, 16_384, 13, 20.0);
    println!(
        "\nCross-query envelopes, {queries} co-resident 25 ms-slide sums over {n} hosts (20 s):\n\
         per-query frames: {} wire messages for {} frames\n\
         envelopes:        {} wire messages — {:.2}x fewer, results bit-identical,\n\
         completeness {:.1}% vs {:.1}%",
        off.wire_msgs,
        off.frames,
        on.wire_msgs,
        off.wire_msgs as f64 / on.wire_msgs.max(1) as f64,
        on.completeness,
        off.completeness,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_run_batches_summary_messages_at_least_2x() {
        // The ISSUE 1 acceptance bar: a 100-host fig13-style run must
        // deliver the same results with ≥ 2x fewer summary message events.
        //
        // "Same results" here is the paper's own tolerance: with four trees
        // the syncless re-index can disperse a constituent into an adjacent
        // window when its dynamic timeout shifts by one tick (Section 5.1),
        // so per-index counts may differ by a couple of participants while
        // steady-state totals and completeness are conserved. The strict
        // bit-for-bit parity claim is proven separately on single-tree
        // plans by `prop_batching` in mortar-core.
        let n = 100;
        let per_tuple = batching_run(n, 1, 13, 30.0);
        let batched = batching_run(n, 32, 13, 30.0);
        assert!(per_tuple.completeness > 90.0, "run unhealthy: {per_tuple:?}");
        assert!(
            (per_tuple.completeness - batched.completeness).abs() < 0.5,
            "completeness diverged: {} vs {}",
            per_tuple.completeness,
            batched.completeness
        );
        // Steady-state conservation: trim the in-flight tail second, then
        // totals match and per-index dispersion stays within ±2.
        let horizon = *per_tuple.by_index.keys().last().unwrap() - 1_000_000;
        let steady = |m: &BTreeMap<i64, u32>| -> (u64, BTreeMap<i64, u32>) {
            let trimmed: BTreeMap<i64, u32> = m.range(..horizon).map(|(&k, &v)| (k, v)).collect();
            (trimmed.values().map(|&v| v as u64).sum(), trimmed)
        };
        let (total_a, idx_a) = steady(&per_tuple.by_index);
        let (total_b, idx_b) = steady(&batched.by_index);
        assert_eq!(total_a, total_b, "steady-state participant totals diverged");
        for (k, va) in &idx_a {
            let vb = idx_b.get(k).copied().unwrap_or(0);
            assert!(va.abs_diff(vb) <= 2, "window {k} dispersed beyond tolerance: {va} vs {vb}");
        }
        assert!(
            batched.frames * 2 <= per_tuple.frames,
            "expected ≥2x fewer summary messages: {} vs {}",
            batched.frames,
            per_tuple.frames
        );
    }

    #[test]
    fn envelopes_cut_wire_messages_on_the_multi_query_run() {
        // The ISSUE 4 acceptance bar: on a fig13-style 100-host run with
        // co-resident queries, envelopes must deliver identical results
        // with measurably fewer wire messages. Chaos-free runs are
        // deterministic and envelope coalescing is pure transport, so
        // "identical" here is exact — bit-for-bit, not a tolerance.
        let n = 100;
        let off = envelope_run(n, 3, 0, 13, 20.0);
        let on = envelope_run(n, 3, 16_384, 13, 20.0);
        assert!(off.completeness > 90.0, "run unhealthy: {off:?}");
        assert_eq!(off.by_index, on.by_index, "envelopes changed root results");
        assert!(
            (off.completeness - on.completeness).abs() < 1e-9,
            "completeness diverged: {} vs {}",
            off.completeness,
            on.completeness
        );
        // Logical traffic is conserved; only the wire grouping changes.
        assert_eq!(off.frames, on.frames);
        assert_eq!(off.tuples, on.tuples);
        assert!(
            on.wire_msgs * 4 <= off.wire_msgs * 3,
            "expected ≥1.33x fewer wire messages: {} vs {}",
            on.wire_msgs,
            off.wire_msgs
        );
    }
}
