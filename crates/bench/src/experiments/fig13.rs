//! Figure 13: system scaling — unique heartbeat children per node as
//! queries (and nodes per query) grow (Section 7.2.1).
//!
//! Paper setup: one query rooted at every peer, each aggregating over all
//! other nodes, over a shared coordinate set. Heartbeats are shared across
//! trees and queries, so overhead scales sub-linearly: a second tree
//! roughly doubles the single-tree cost, but going from 2 to 4 trees adds
//! only ~50% more.
//!
//! This is a pure planning computation (no simulation needed): we plan
//! every query's tree set and count each node's distinct children across
//! all of them.

use crate::{banner, header, row};
use mortar_overlay::{plan_tree_set, PlannerConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Mean unique children per node with `queries` queries over `n` nodes.
fn children_per_node(n: usize, tree_count: usize, bf: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    // A shared coordinate set (clustered, as Vivaldi output would be).
    let coords: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let cluster = rng.gen_range(0..8);
            vec![
                (cluster % 4) as f64 * 40.0 + rng.gen::<f64>() * 8.0,
                (cluster / 4) as f64 * 40.0 + rng.gen::<f64>() * 8.0,
            ]
        })
        .collect();
    let cfg = PlannerConfig { branching_factor: bf, tree_count, kmeans_iters: 15 };
    let mut children: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    // One query per peer, rooted there, aggregating over everyone.
    for root in 0..n {
        let trees = plan_tree_set(&coords, root, &cfg, &mut rng);
        for t in trees.trees() {
            for m in 0..n {
                for &c in t.children(m) {
                    children[m].insert(c);
                }
            }
        }
    }
    children.iter().map(HashSet::len).sum::<usize>() as f64 / n as f64
}

/// Runs the scaling sweep.
pub fn run() {
    banner("Figure 13", "unique heartbeat children per node vs. query count");
    let sizes = [25usize, 50, 100, 150, 200];
    header(
        "children/node at N=",
        &sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    row("N (no sharing bound)", &sizes.map(|s| s as f64));
    for trees in [4usize, 2, 1] {
        let cells: Vec<f64> =
            sizes.iter().map(|&s| children_per_node(s, trees, 16, 7)).collect();
        row(&format!("{trees} trees"), &cells);
    }
    let one = children_per_node(100, 1, 16, 7);
    let two = children_per_node(100, 2, 16, 7);
    let four = children_per_node(100, 4, 16, 7);
    println!(
        "\nAt N=100: 1 tree = {one:.1}, 2 trees = {two:.1} ({:.2}x), 4 trees = \
         {four:.1} ({:.2}x over 2).\nExpected shape (paper): a sibling roughly \
         doubles the primary's overhead, but 4 trees cost only ~1.5x of 2 — \
         heartbeats are shared across queries and trees.",
        two / one,
        four / two
    );
}
