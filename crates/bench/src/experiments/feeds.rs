//! Feeds: intake-policy burst behavior and the congestion-adaptive
//! envelope budget, at fleet scale (`BENCH_feeds.json` at the repo root).
//!
//! Three measurement families on a 100-host fleet:
//!
//! 1. **Policy burst rows** — one plain periodic query (the "unrelated
//!    workload") beside one feed query whose synthetic source bursts 10×
//!    for five seconds, once per [`IntakePolicy`]. Each row records the
//!    full intake ledger (offered / delivered / shed / sampled / spilled
//!    counters, peak queue and spill bytes, `overcap`) plus whether the
//!    unrelated query's results stayed bit-identical to a fleet that
//!    never hosted the feed.
//! 2. **Adaptive envelope contrast** — the same burst driven through a
//!    tight static envelope budget with the AIMD controller off and on:
//!    outbox peak bytes, budget cuts, and whether the off run reproduces
//!    the static protocol bit-for-bit.
//! 3. **Idle allocation probe** — a warm peer with an *exhausted* feed
//!    installed must tick allocation-free: the feed layer's steady-state
//!    cost outside active intake is zero heap traffic.

use mortar_core::engine::{Engine, EngineConfig};
use mortar_core::feed::{BurstProfile, FeedConnector, FeedSpec, FeedStats, IntakePolicy};
use mortar_core::op::OpKind;
use mortar_core::query::{QuerySpec, SensorSpec};
use mortar_core::window::WindowSpec;
use mortar_net::NodeId;

/// Fleet size for every row.
pub const HOSTS: usize = 100;
/// Engine seed (shared with `tests/feeds.rs` — same fleet, same plan).
pub const SEED: u64 = 2024;
/// Simulated seconds per run: burst over frame seconds [5, 10), then
/// settle.
pub const SIM_SECS: f64 = 20.0;

/// A 10× burst over frame seconds [5, 10) on the given steady period.
fn burst_profile(period_us: u64) -> BurstProfile {
    BurstProfile::steady(period_us, 1.0).with_burst(5_000_000, 10_000_000, 10)
}

/// Steady emission period and drain rate tuned per policy so the burst
/// reaches the mechanism under test (watermark, stride, spill ring) —
/// kept in lockstep with `tests/feeds.rs`.
fn tuning(policy: IntakePolicy) -> (u64, usize) {
    match policy {
        IntakePolicy::Backpressure { .. }
        | IntakePolicy::Shed { .. }
        | IntakePolicy::Sample { .. } => (100_000, 8),
        IntakePolicy::Spill { .. } => (20_000, 8),
    }
}

/// The fleet-wide periodic sum that must not notice the burst.
fn base_spec() -> QuerySpec {
    QuerySpec {
        name: "base".into(),
        root: 0,
        members: (0..HOSTS as NodeId).collect(),
        op: OpKind::Sum { field: 0 },
        window: WindowSpec::time_tumbling_us(1_000_000),
        filter: None,
        sensor: SensorSpec::Periodic { period_us: 1_000_000, value: 1.0 },
        post: None,
    }
}

/// A feed-driven fleet-wide sum.
fn feed_spec(
    name: &str,
    profile: BurstProfile,
    policy: IntakePolicy,
    drain_max: Option<usize>,
    slide_us: u64,
) -> QuerySpec {
    let mut feed = FeedSpec::new(FeedConnector::Bursty(profile), policy);
    if let Some(d) = drain_max {
        feed.drain_max = d;
    }
    QuerySpec {
        name: name.into(),
        root: 0,
        members: (0..HOSTS as NodeId).collect(),
        op: OpKind::Sum { field: 0 },
        window: WindowSpec::time_tumbling_us(slide_us),
        filter: None,
        sensor: SensorSpec::Feed(feed),
        post: None,
    }
}

/// Result-log fingerprint of one query at the root, exact to the bit.
fn results_fp(eng: &Engine, name: &str) -> Vec<(i64, i64, Option<u64>, u32)> {
    eng.results(0)
        .iter()
        .filter(|r| &*r.query == name)
        .map(|r| (r.tb, r.te, r.scalar.map(f64::to_bits), r.participants))
        .collect()
}

/// Bit-level result fingerprint rows: `(tb, te, scalar bits, participants)`.
type ResultFp = Vec<(i64, i64, Option<u64>, u32)>;

/// One policy burst row.
#[derive(Debug)]
pub struct PolicyRow {
    pub policy: &'static str,
    pub stats: FeedStats,
    pub conserved: bool,
    /// The unrelated query's results matched the no-feed baseline exactly.
    pub base_bit_identical: bool,
}

/// Runs the per-policy burst sweep: a no-feed baseline, then one run per
/// policy, comparing the unrelated query's result log against the
/// baseline bit-for-bit.
pub fn policy_rows() -> Vec<PolicyRow> {
    let run = |policy: Option<IntakePolicy>| -> (ResultFp, FeedStats, bool) {
        let mut cfg = EngineConfig::paper(HOSTS, SEED);
        cfg.plan_on_true_latency = true;
        let mut eng = Engine::new(cfg).expect("valid config");
        eng.install(base_spec()).expect("valid base spec");
        if let Some(p) = policy {
            let (period_us, drain) = tuning(p);
            eng.install(feed_spec("burst", burst_profile(period_us), p, Some(drain), 1_000_000))
                .expect("valid feed spec");
        }
        eng.run_secs(SIM_SECS);
        let (stats, conserved, _held) = eng.feed_totals();
        (results_fp(&eng, "base"), stats, conserved)
    };
    let (baseline, _, _) = run(None);
    let policies: [(&'static str, IntakePolicy); 4] = [
        ("backpressure", IntakePolicy::Backpressure { credits: 64 }),
        ("shed", IntakePolicy::Shed { watermark: 64 }),
        ("sample", IntakePolicy::Sample { keep_1_in_n: 4 }),
        ("spill", IntakePolicy::Spill { cap_bytes: 4096 }),
    ];
    policies
        .into_iter()
        .map(|(name, p)| {
            let (base, stats, conserved) = run(Some(p));
            PolicyRow { policy: name, stats, conserved, base_bit_identical: base == baseline }
        })
        .collect()
}

/// One adaptive-contrast run's measurements.
#[derive(Debug, PartialEq)]
pub struct AdaptiveOutcome {
    pub outbox_peak: u64,
    pub budget_cuts: u64,
    /// Result fingerprints of every installed query, for the bit-identity
    /// contrast between adaptive-off and the static protocol.
    fp: Vec<(i64, i64, Option<u64>, u32)>,
}

/// The congestion-controller scenario, in lockstep with `tests/feeds.rs`:
/// a 128 B static envelope budget (AIMD congestion threshold 32 B of
/// enqueued payload per destination per 250 ms window), a 200 ms hold
/// (below `min_timeout_us`, so no tuple is flagged urgent), a warm-up
/// burst from 2.5 s that engages the controller early, and the heavy 10×
/// burst from 5 s whose backlog peak the controller must cut.
pub fn adaptive_run(adaptive: bool) -> AdaptiveOutcome {
    let mut cfg = EngineConfig::paper(HOSTS, SEED);
    cfg.plan_on_true_latency = true;
    cfg.peer.adaptive_envelopes = adaptive;
    cfg.peer.envelope_budget = 128;
    cfg.peer.envelope_hold_us = 200_000;
    let mut eng = Engine::new(cfg).expect("valid config");
    eng.install(base_spec()).expect("valid base spec");
    let warm = BurstProfile::steady(300_000, 1.0).with_burst(2_500_000, 10_000_000, 10);
    let credits = IntakePolicy::Backpressure { credits: 1024 };
    eng.install(feed_spec("warm", warm, credits, None, 100_000)).expect("valid warm spec");
    eng.install(feed_spec("burst", burst_profile(500_000), credits, None, 100_000))
        .expect("valid burst spec");
    eng.run_secs(SIM_SECS);
    let mut fp = results_fp(&eng, "base");
    fp.extend(results_fp(&eng, "warm"));
    fp.extend(results_fp(&eng, "burst"));
    AdaptiveOutcome {
        outbox_peak: eng.outbox_peak_bytes(),
        budget_cuts: eng.envelope_budget_cuts(),
        fp,
    }
}

/// Measures heap allocations across steady-state idle ticks on a warm
/// peer that hosts an **exhausted** feed (the source's `until_us` has
/// passed and its backlog is drained): the feed layer must add zero
/// allocations outside active intake. Returns `(allocs, window_sim_secs)`;
/// panics if the counting allocator is not installed.
pub fn feed_idle_alloc_run() -> (u64, f64) {
    use mortar_core::msg::MortarMsg;
    use mortar_core::op::OpRegistry;
    use mortar_core::peer::{MortarPeer, PeerConfig};
    use mortar_core::query::{build_records, QueryId};
    use mortar_net::{SimBuilder, Topology};
    use mortar_overlay::{Tree, TreeSet};
    use std::sync::Arc;

    let cfg = PeerConfig { track_truth: false, ..PeerConfig::default() };
    let reg = OpRegistry::new();
    let mut sim = SimBuilder::new(Topology::star(2, 1_000), 11)
        .build(move |id| MortarPeer::new(id, cfg, reg.clone()));
    // A finite feed: 100 µs cadence, dry after 4 s. By the end of the 7 s
    // warm-up the source is exhausted and the intake queue drained.
    let mut profile = BurstProfile::steady(100_000, 1.0);
    profile.until_us = 4_000_000;
    let mut spec = feed_spec(
        "dry_feed",
        profile,
        IntakePolicy::Backpressure { credits: 64 },
        None,
        10_000_000,
    );
    spec.members = vec![0];
    let trees = TreeSet::new(vec![Tree::from_parents(0, vec![None])]);
    let records = build_records(&spec.members, &trees);
    let msg = MortarMsg::Install {
        spec: Arc::new(spec),
        id: QueryId(1),
        seq: 1,
        records,
        issue_age_us: 0,
    };
    sim.inject(0, 0, msg, 256);
    sim.run_for_secs(7.0);
    assert!(
        crate::alloc_probe::probe_active(),
        "counting allocator not installed; run via the feeds bench binary"
    );
    let window_sim_secs = 2.4;
    let (allocs, _) = crate::alloc_probe::count_allocs(|| sim.run_for_secs(window_sim_secs));
    (allocs, window_sim_secs)
}

fn json_field(out: &mut String, key: &str, value: String) {
    out.push_str(&format!("  \"{key}\": {value},\n"));
}

/// Renders the artifact consumed by CI's `feed-burst` gate.
pub fn to_json(
    rows: &[PolicyRow],
    off: &AdaptiveOutcome,
    off_repeat: &AdaptiveOutcome,
    on: &AdaptiveOutcome,
    idle: (u64, f64),
) -> String {
    let mut s = String::from("{\n");
    json_field(&mut s, "bench", "\"feeds\"".into());
    json_field(
        &mut s,
        "workload",
        "\"100-host fleet, 10x burst over [5 s, 10 s), one policy per run\"".into(),
    );
    json_field(&mut s, "hosts", HOSTS.to_string());
    json_field(&mut s, "sim_secs", format!("{SIM_SECS:.1}"));
    let arr = |f: &dyn Fn(&PolicyRow) -> String| {
        format!("[{}]", rows.iter().map(f).collect::<Vec<_>>().join(", "))
    };
    json_field(&mut s, "policies", arr(&|r| format!("\"{}\"", r.policy)));
    json_field(&mut s, "offered", arr(&|r| r.stats.offered.to_string()));
    json_field(&mut s, "delivered", arr(&|r| r.stats.delivered.to_string()));
    json_field(&mut s, "shed_tuples", arr(&|r| r.stats.shed_tuples.to_string()));
    json_field(&mut s, "sampled_out", arr(&|r| r.stats.sampled_out.to_string()));
    json_field(&mut s, "spilled", arr(&|r| r.stats.spilled.to_string()));
    json_field(&mut s, "spill_drops", arr(&|r| r.stats.spill_drops.to_string()));
    json_field(&mut s, "peak_queue_bytes", arr(&|r| r.stats.peak_queue_bytes.to_string()));
    json_field(&mut s, "peak_spill_bytes", arr(&|r| r.stats.peak_spill_bytes.to_string()));
    json_field(&mut s, "overcap", arr(&|r| r.stats.overcap.to_string()));
    json_field(&mut s, "conserved", arr(&|r| r.conserved.to_string()));
    json_field(&mut s, "base_bit_identical", arr(&|r| r.base_bit_identical.to_string()));
    // The adaptive envelope contrast.
    json_field(&mut s, "static_outbox_peak_bytes", off.outbox_peak.to_string());
    json_field(&mut s, "adaptive_outbox_peak_bytes", on.outbox_peak.to_string());
    json_field(&mut s, "static_budget_cuts", off.budget_cuts.to_string());
    json_field(&mut s, "adaptive_budget_cuts", on.budget_cuts.to_string());
    json_field(&mut s, "adaptive_engaged", (on.budget_cuts > 0).to_string());
    json_field(
        &mut s,
        "adaptive_peak_below_static",
        (on.outbox_peak < off.outbox_peak).to_string(),
    );
    json_field(&mut s, "adaptive_off_bit_identical", (off == off_repeat).to_string());
    // Steady-state allocation discipline with a (drained) feed installed.
    let (idle_allocs, idle_window) = idle;
    json_field(
        &mut s,
        "allocs_per_sim_sec",
        format!("{:.2}", idle_allocs as f64 / idle_window.max(1e-9)),
    );
    json_field(&mut s, "idle_alloc_window_sim_secs", format!("{idle_window:.1}"));
    s.push_str("  \"burst_factor\": 10\n}\n");
    s
}

/// Runs the harness and writes `BENCH_feeds.json` at the repo root.
pub fn run() {
    crate::banner("feeds", "intake policies and adaptive envelopes under a 10x burst");
    let rows = policy_rows();
    println!(
        "\n{:>14} {:>9} {:>9} {:>7} {:>8} {:>8} {:>7} {:>9} {:>8} {:>8}",
        "policy",
        "offered",
        "delivered",
        "shed",
        "sampled",
        "spilled",
        "overcap",
        "peak-q(B)",
        "conserv",
        "base=="
    );
    for r in &rows {
        println!(
            "{:>14} {:>9} {:>9} {:>7} {:>8} {:>8} {:>7} {:>9} {:>8} {:>8}",
            r.policy,
            r.stats.offered,
            r.stats.delivered,
            r.stats.shed_tuples,
            r.stats.sampled_out,
            r.stats.spilled,
            r.stats.overcap,
            r.stats.peak_queue_bytes,
            r.conserved,
            r.base_bit_identical,
        );
    }
    let off = adaptive_run(false);
    let off_repeat = adaptive_run(false);
    let on = adaptive_run(true);
    println!(
        "\nadaptive envelope contrast (128 B static budget, 200 ms hold):\n\
         static:   outbox peak {} B, {} cuts\n\
         adaptive: outbox peak {} B, {} cuts\n\
         off-run reproducible: {}, engaged: {}, peak below static: {}",
        off.outbox_peak,
        off.budget_cuts,
        on.outbox_peak,
        on.budget_cuts,
        off == off_repeat,
        on.budget_cuts > 0,
        on.outbox_peak < off.outbox_peak,
    );
    let idle = feed_idle_alloc_run();
    println!(
        "\nidle ticks with a drained feed installed: {} allocations over {:.1} simulated \
         seconds ({:.2} allocs/sim-sec)",
        idle.0,
        idle.1,
        idle.0 as f64 / idle.1
    );
    let json = to_json(&rows, &off, &off_repeat, &on, idle);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_feeds.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
