//! Figure 12: completeness as a function of tree-set size under node
//! failures (Section 7.2.1).
//!
//! Paper setup: 680 peers, bf 16, 1-second window sum; disconnect 0–80% of
//! nodes; three-minute runs, five per point. Four trees reach perfect
//! completeness at 10–20% failures and 98%/94% of remaining live nodes at
//! 30%/40%; five trees add little ("the point of diminishing returns").

use super::common::{count_peers_spec, mean, standard_engine};
use crate::{banner, header, row, scaled};
use mortar_core::engine::{Engine, EngineConfig};
use mortar_core::metrics;
use mortar_core::query::SensorSpec;
use mortar_net::TrafficClass;

/// Completeness (% of *all* nodes, like the paper's y-axis) for one config.
fn one(n: usize, trees: usize, fail: f64, secs: f64, seed: u64) -> f64 {
    let mut eng = standard_engine(n, trees, 16, seed);
    eng.install(count_peers_spec("q", n, 1_000_000)).expect("valid spec");
    // Let the query install and stabilize, then fail nodes.
    eng.run_secs(15.0);
    eng.disconnect_random(fail, 0);
    eng.run_secs(secs);
    // Average over the failed period, skipping the 10 s detection window.
    let results = eng.results(0);
    let horizon = (15.0 + secs) as usize;
    let tl = metrics::completeness_timeline(results, n, horizon);
    let steady: Vec<f64> =
        tl[(15 + 12)..horizon.saturating_sub(8)].iter().copied().filter(|c| !c.is_nan()).collect();
    mean(&steady)
}

/// Data-plane network load of high-rate (25 ms-slide) fleet-wide sums at
/// one (tree count, frame-batching cap, envelope budget) point: total
/// data-class megabytes (per-byte accounting: `size × physical hops`),
/// data-class message events (the per-message cost batching and
/// enveloping amortize), and completeness. Two co-resident queries drive
/// the cross-query envelope case; `envelope_budget = 0` disables
/// envelopes (per-query frames on the wire).
pub fn network_load(
    n: usize,
    trees: usize,
    batch: usize,
    envelope_budget: u32,
    secs: f64,
    seed: u64,
) -> (f64, u64, f64) {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.planner.tree_count = trees;
    cfg.peer.summary_batch_max = batch;
    cfg.peer.envelope_budget = envelope_budget;
    let mut eng = Engine::new(cfg).expect("valid config");
    let mut spec = count_peers_spec("fast", n, 25_000);
    spec.sensor = SensorSpec::Periodic { period_us: 25_000, value: 1.0 };
    eng.install(spec).expect("valid spec");
    let mut second = count_peers_spec("peak", n, 50_000);
    second.sensor = SensorSpec::Periodic { period_us: 50_000, value: 1.0 };
    eng.install(second).expect("valid spec");
    eng.run_secs(secs);
    let bw = eng.sim.bandwidth();
    let mb = bw.bytes_total(TrafficClass::Data) as f64 / 1e6;
    let msgs = bw.msgs_total(TrafficClass::Data);
    let completeness = metrics::mean_completeness(
        &eng.results(0).iter().filter(|r| &*r.query == "fast").cloned().collect::<Vec<_>>(),
        n,
        40,
    );
    (mb, msgs, completeness)
}

/// Prints the network-load table: per-byte vs per-message cost with
/// batching off (cap 1), batching on (cap 32, per-query frames), and
/// batching + cross-query envelopes, across tree-set sizes.
fn run_network_load() {
    let n = 100;
    let secs = 30.0;
    println!(
        "\nData-plane load, {n}-host 25/50 ms-slide co-resident sums over {secs:.0} s \
         (per-byte = MB × hops, per-message = send events):"
    );
    println!(
        "{:>7} {:>16} {:>12} {:>12} {:>13} {:>13}",
        "trees", "transport", "data MB", "data msgs", "msgs saved", "complete %"
    );
    for trees in [1usize, 2, 4] {
        let (mb1, msgs1, c1) = network_load(n, trees, 1, 0, secs, 12);
        let (mb32, msgs32, c32) = network_load(n, trees, 32, 0, secs, 12);
        let (mbe, msgse, ce) = network_load(n, trees, 32, 16_384, secs, 12);
        println!("{trees:>7} {:>16} {mb1:>12.2} {msgs1:>12} {:>13} {c1:>13.1}", "off", "-");
        println!(
            "{trees:>7} {:>16} {mb32:>12.2} {msgs32:>12} {:>12.2}x {c32:>13.1}",
            "cap 32",
            msgs1 as f64 / msgs32.max(1) as f64
        );
        println!(
            "{trees:>7} {:>16} {mbe:>12.2} {msgse:>12} {:>12.2}x {ce:>13.1}",
            "cap 32 + envelope",
            msgs1 as f64 / msgse.max(1) as f64
        );
    }
}

/// Runs the tree-count sweep.
pub fn run() {
    banner("Figure 12", "coverage vs. number of trees under node failures");
    let n = scaled(240, 680);
    let secs = scaled(90.0, 180.0);
    let runs = scaled(1, 5);
    let fails = [0.0, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8];
    header(
        "completeness (%)",
        &fails.iter().map(|f| format!("{:.0}%", f * 100.0)).collect::<Vec<_>>(),
    );
    row("Optimal", &fails.map(|f| 100.0 * (1.0 - f)));
    for trees in [5usize, 4, 3, 2, 1] {
        let cells: Vec<f64> = fails
            .iter()
            .map(|&f| {
                let samples: Vec<f64> =
                    (0..runs).map(|r| one(n, trees, f, secs, 200 + r as u64 * 31)).collect();
                mean(&samples)
            })
            .collect();
        row(&format!("{trees} trees"), &cells);
    }
    println!(
        "\nExpected shape (paper): 4 trees track the optimal line (perfect at\n\
         10-20%, ~98%/94% of live nodes at 30%/40%); 5 trees add little; 1 tree\n\
         collapses quickly."
    );
    run_network_load();
}
