//! Figure 12: completeness as a function of tree-set size under node
//! failures (Section 7.2.1).
//!
//! Paper setup: 680 peers, bf 16, 1-second window sum; disconnect 0–80% of
//! nodes; three-minute runs, five per point. Four trees reach perfect
//! completeness at 10–20% failures and 98%/94% of remaining live nodes at
//! 30%/40%; five trees add little ("the point of diminishing returns").

use super::common::{count_peers_spec, mean, standard_engine};
use crate::{banner, header, row, scaled};
use mortar_core::metrics;

/// Completeness (% of *all* nodes, like the paper's y-axis) for one config.
fn one(n: usize, trees: usize, fail: f64, secs: f64, seed: u64) -> f64 {
    let mut eng = standard_engine(n, trees, 16, seed);
    eng.install(count_peers_spec("q", n, 1_000_000)).expect("valid spec");
    // Let the query install and stabilize, then fail nodes.
    eng.run_secs(15.0);
    eng.disconnect_random(fail, 0);
    eng.run_secs(secs);
    // Average over the failed period, skipping the 10 s detection window.
    let results = eng.results(0);
    let horizon = (15.0 + secs) as usize;
    let tl = metrics::completeness_timeline(results, n, horizon);
    let steady: Vec<f64> =
        tl[(15 + 12)..horizon.saturating_sub(8)].iter().copied().filter(|c| !c.is_nan()).collect();
    mean(&steady)
}

/// Runs the tree-count sweep.
pub fn run() {
    banner("Figure 12", "coverage vs. number of trees under node failures");
    let n = scaled(240, 680);
    let secs = scaled(90.0, 180.0);
    let runs = scaled(1, 5);
    let fails = [0.0, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8];
    header(
        "completeness (%)",
        &fails.iter().map(|f| format!("{:.0}%", f * 100.0)).collect::<Vec<_>>(),
    );
    row("Optimal", &fails.map(|f| 100.0 * (1.0 - f)));
    for trees in [5usize, 4, 3, 2, 1] {
        let cells: Vec<f64> = fails
            .iter()
            .map(|&f| {
                let samples: Vec<f64> =
                    (0..runs).map(|r| one(n, trees, f, secs, 200 + r as u64 * 31)).collect();
                mean(&samples)
            })
            .collect();
        row(&format!("{trees} trees"), &cells);
    }
    println!(
        "\nExpected shape (paper): 4 trees track the optimal line (perfect at\n\
         10-20%, ~98%/94% of live nodes at 30%/40%); 5 trees add little; 1 tree\n\
         collapses quickly."
    );
}
