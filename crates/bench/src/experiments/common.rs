//! Shared experiment plumbing: the paper's standard sum query, engine
//! construction, and failure scripting.

use mortar_core::engine::{Engine, EngineConfig};
use mortar_core::op::OpKind;
use mortar_core::query::{QuerySpec, SensorSpec};
use mortar_core::window::WindowSpec;
use mortar_net::NodeId;

/// The microbenchmark query (Section 7.2): a sum subscribing to a stream at
/// every peer, counting peers; time window with range = slide = 1 s; each
/// sensor emits the integer 1 every second.
pub fn count_peers_spec(name: &str, n: usize, slide_us: u64) -> QuerySpec {
    QuerySpec {
        name: name.to_string(),
        root: 0,
        members: (0..n as NodeId).collect(),
        op: OpKind::Sum { field: 0 },
        window: WindowSpec::time_tumbling_us(slide_us),
        filter: None,
        sensor: SensorSpec::Periodic { period_us: 1_000_000, value: 1.0 },
        post: None,
    }
}

/// The paper's standard engine: Inet-like topology, four trees, bf 16.
/// Planning runs on the true latency matrix (equivalent tree shapes,
/// minutes faster over parameter sweeps); Figure 17 exercises Vivaldi
/// planning explicitly.
pub fn standard_engine(n: usize, trees: usize, bf: usize, seed: u64) -> Engine {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.planner.tree_count = trees;
    cfg.planner.branching_factor = bf;
    Engine::new(cfg).expect("valid config")
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Standard deviation of a slice.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}
