//! Figure 17: network-aware planning — average 90th-percentile peer-to-root
//! overlay latency for random, planned (primary), and derived (sibling)
//! trees across branching factors (Section 7.3).
//!
//! Paper setup: 179 randomly chosen nodes over the Inet topology; Vivaldi
//! runs ≥10 rounds before interconnecting operators; 30 trees per
//! configuration; bf ∈ {2, 4, 8, 16, 32}. The recursive cluster planner
//! improves on random by 30–50%, and siblings preserve the majority of the
//! benefit.

use crate::{banner, header, row, scaled};
use mortar_coords::VivaldiSystem;
use mortar_net::Topology;
use mortar_overlay::planner::{derive_sibling, percentile, plan_primary, root_latencies};
use mortar_overlay::tree::random_tree;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs the planning comparison.
pub fn run() {
    banner("Figure 17", "90th-pct peer-to-root overlay latency vs. branching factor");
    let hosts = scaled(340, 680);
    let n = 179;
    let trials = scaled(10, 30);
    let topo = Topology::paper_inet(hosts, 170);
    let full_lat = topo.latency_matrix_ms();
    let mut rng = SmallRng::seed_from_u64(170);

    // 179 randomly chosen nodes.
    let mut ids: Vec<usize> = (0..hosts).collect();
    ids.shuffle(&mut rng);
    let members: Vec<usize> = ids.into_iter().take(n).collect();
    let lat: Vec<Vec<f64>> =
        members.iter().map(|&a| members.iter().map(|&b| full_lat[a][b]).collect()).collect();

    // Vivaldi for at least ten rounds before interconnecting operators
    // (we run more: each round is 8 samples, and an under-converged
    // embedding directly caps the planner's advantage).
    let mut viv = VivaldiSystem::new(n, 3, 171);
    viv.run(&lat, scaled(30, 60), 8);
    println!(
        "Vivaldi embedding error after warm-up: {:.1}%",
        100.0 * viv.mean_relative_error(&lat)
    );
    let coords: Vec<Vec<f64>> = viv.coords().into_iter().map(|c| c.0).collect();

    let bfs = [2usize, 4, 8, 16, 32];
    header("avg p90 latency (ms), bf=", &bfs.iter().map(|b| b.to_string()).collect::<Vec<_>>());
    let mut results: Vec<(&str, Vec<f64>)> = Vec::new();
    for kind in ["Random", "Planned", "Derived"] {
        let cells: Vec<f64> = bfs
            .iter()
            .map(|&bf| {
                let mut acc = 0.0;
                for t in 0..trials {
                    let tree = match kind {
                        "Random" => random_tree(n, 0, bf, &mut rng),
                        "Planned" => plan_primary(&coords, 0, bf, 25, &mut rng),
                        _ => {
                            let p = plan_primary(&coords, 0, bf, 25, &mut rng);
                            derive_sibling(&p, &mut rng)
                        }
                    };
                    let _ = t;
                    acc += percentile(&root_latencies(&tree, &lat), 0.9);
                }
                acc / trials as f64
            })
            .collect();
        row(kind, &cells);
        results.push((kind, cells));
    }
    let rand_mean: f64 = results[0].1.iter().sum::<f64>() / bfs.len() as f64;
    let plan_mean: f64 = results[1].1.iter().sum::<f64>() / bfs.len() as f64;
    let derv_mean: f64 = results[2].1.iter().sum::<f64>() / bfs.len() as f64;
    println!(
        "\nplanned improves on random by {:.0}% on average (paper: 30-50%); \
         derived siblings retain {:.0}% of the planning benefit.",
        100.0 * (1.0 - plan_mean / rand_mean),
        100.0 * (rand_mean - derv_mean) / (rand_mean - plan_mean).max(1e-9)
    );
}
