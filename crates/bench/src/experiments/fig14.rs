//! Figures 14 & 15: responsiveness — completeness, tuple path length, and
//! total network load during rolling failures (Fig. 14) and churn
//! (Fig. 15), Section 7.2.2.
//!
//! Paper setup (Fig. 14): 680 peers, 4 trees, bf 16, 1-second window sum;
//! disconnect 10/20/30/40% for 60 s each, reconnecting in between. Mortar
//! returns stable results ~7 s after each failure (heartbeat period 2 s),
//! average result latency 4.5 s, path length 4 (tree height) with up to 3
//! extra hops during failures. Steady-state load 12.5 Mbps of which
//! 3.4 Mbps heartbeats; the same experiment without aggregation costs 2x.
//!
//! Fig. 15: disconnect 10%, then every 10 s reconnect half and fail a fresh
//! 5% — Mortar reconnects all live nodes within each 10 s epoch.

use super::common::{count_peers_spec, mean, standard_engine};
use crate::{banner, scaled};
use mortar_core::engine::Engine;
use mortar_core::metrics::{self, mean_report_latency_secs};
use mortar_net::{NodeId, TrafficClass};

fn path_len_timeline(eng: &Engine, horizon: usize) -> Vec<f64> {
    let mut sums = vec![0.0; horizon];
    let mut counts = vec![0u64; horizon];
    for r in eng.results(0) {
        let sec = (r.emit_true_us / 1_000_000) as usize;
        if sec < horizon {
            // Weight by participants so big merges dominate like the paper.
            sums[sec] += r.path_len as f64 * r.participants as f64;
            counts[sec] += r.participants as u64;
        }
    }
    (0..horizon)
        .map(|s| if counts[s] == 0 { f64::NAN } else { sums[s] / counts[s] as f64 })
        .collect()
}

fn print_timeline(label: &str, series: &[f64], step: usize) {
    print!("{label:>14}:");
    for (i, v) in series.iter().enumerate() {
        if i % step == 0 {
            if v.is_nan() {
                print!("{:>7}", "-");
            } else {
                print!("{v:>7.1}");
            }
        }
    }
    println!();
}

/// Runs the rolling-failures experiment (Figure 14).
pub fn run_fig14() {
    banner("Figure 14", "completeness / path length / network load under rolling failures");
    let n = scaled(240, 680);
    let mut eng = standard_engine(n, 4, 16, 300);
    eng.install(count_peers_spec("q", n, 1_000_000)).expect("valid spec");
    // Timeline: 40 s warm-up, then 60 s outages of 10/20/30/40% separated
    // by 40 s of recovery.
    eng.run_secs(40.0);
    let mut marks = vec![(0.0, "install")];
    for (i, frac) in [0.1, 0.2, 0.3, 0.4].iter().enumerate() {
        let t0 = 40.0 + i as f64 * 100.0;
        marks.push((t0, "fail"));
        let down = eng.disconnect_random(*frac, 0);
        eng.run_secs(60.0);
        marks.push((t0 + 60.0, "recover"));
        eng.reconnect(&down);
        eng.run_secs(40.0);
    }
    let horizon = 440usize;
    let live = 100.0; // Completeness is vs. live nodes in the text.
    let _ = live;
    let comp = metrics::completeness_timeline(eng.results(0), n, horizon);
    let path = path_len_timeline(&eng, horizon);
    let bw: Vec<f64> = (0..horizon).map(|s| eng.sim.bandwidth().mbps_at(s)).collect();
    println!("timeline (one sample per 20 s; failures at 40/140/240/340 s):");
    print_timeline("t (s)", &(0..horizon).map(|s| s as f64).collect::<Vec<_>>(), 20);
    print_timeline("complete (%)", &comp, 20);
    print_timeline("path length", &path, 20);
    print_timeline("load (Mbps)", &bw, 20);
    let steady_bw = eng.sim.bandwidth().mean_mbps(20, 40);
    let steady_hb = eng.sim.bandwidth().mean_class_mbps(TrafficClass::Heartbeat, 20, 40);
    let lat = mean_report_latency_secs(eng.results(0));
    println!(
        "\nsteady-state load {steady_bw:.2} Mbps ({steady_hb:.2} Mbps heartbeats); \
         mean result latency {lat:.1}s"
    );

    // The no-aggregation reference: operators forward every summary up the
    // same trees without merging, so each tuple crosses its whole overlay
    // path individually ("nodes fail to wait before sending tuples to
    // their parents"). Computed analytically from the planned primary tree.
    let raw_bw = no_aggregation_mbps(&eng, n);
    println!(
        "same workload without aggregation: {raw_bw:.2} Mbps ({:.1}x Mortar) — \
         the paper reports 2x.",
        raw_bw / steady_bw.max(1e-9)
    );
}

/// Steady-state load of forwarding every per-source summary unmerged up the
/// primary tree: each member's tuple is retransmitted at every overlay hop.
fn no_aggregation_mbps(eng: &Engine, n: usize) -> f64 {
    use mortar_net::sim::TRANSPORT_OVERHEAD_BYTES;
    let mut eng2 = standard_engine(n, 4, 16, 300);
    let spec = count_peers_spec("plan-only", n, 1_000_000);
    let trees = eng2.plan(&spec).expect("valid spec");
    let _ = eng;
    let topo = eng2.sim.topology();
    let per_tuple = 100u32 + TRANSPORT_OVERHEAD_BYTES; // summary + transport.
    let mut bytes_per_sec = 0u64;
    let tree = trees.tree(0);
    for m in 0..n {
        let path = tree.path_to_root(m);
        for w in path.windows(2) {
            let (a, b) = (spec.members[w[0]], spec.members[w[1]]);
            bytes_per_sec += per_tuple as u64 * topo.hops(a, b) as u64;
        }
    }
    bytes_per_sec as f64 * 8.0 / 1e6
}

/// Runs the churn experiment (Figure 15).
pub fn run_fig15() {
    banner("Figure 15", "accuracy during 10% churn (5% swapped every 10 s)");
    let n = scaled(240, 680);
    let mut eng = standard_engine(n, 4, 16, 301);
    eng.install(count_peers_spec("q", n, 1_000_000)).expect("valid spec");
    eng.run_secs(30.0);
    // Initial 10% down.
    let mut down: Vec<NodeId> = eng.disconnect_random(0.10, 0);
    let mut live_series: Vec<f64> = Vec::new();
    for _ in 0..6 {
        eng.run_secs(10.0);
        live_series.push(100.0 * (n - down.len()) as f64 / n as f64);
        // Reconnect 5% (half the down set), fail a fresh random 5%.
        let back: Vec<NodeId> = down.drain(..down.len() / 2).collect();
        eng.reconnect(&back);
        let mut fresh = eng.disconnect_random(0.05, 0);
        down.append(&mut fresh);
    }
    eng.run_secs(10.0);
    let horizon = 100usize;
    let comp = metrics::completeness_timeline(eng.results(0), n, horizon);
    let path = path_len_timeline(&eng, horizon);
    println!("timeline (one sample per 5 s; churn epochs every 10 s from t=30):");
    print_timeline("t (s)", &(0..horizon).map(|s| s as f64).collect::<Vec<_>>(), 5);
    print_timeline("complete (%)", &comp, 5);
    print_timeline("path length", &path, 5);
    let steady: Vec<f64> = comp[40..90].iter().copied().filter(|c| !c.is_nan()).collect();
    println!(
        "\nmean completeness during churn {:.1}% (live nodes ~90%); the paper \
         reconnects all live nodes within each 10 s epoch.",
        mean(&steady)
    );
}
