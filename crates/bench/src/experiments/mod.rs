//! One module per reproduced figure, plus common engine plumbing.

pub mod chaos;
pub mod common;
pub mod feeds;
pub mod fig01;
pub mod fig0910;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod hotpath;
