//! Figure 16: the SDIMS/Pastry baseline under the Figure 14 failure
//! pattern (Section 7.2.3).
//!
//! Paper setup: 680 peers, same topology; nodes publish every 5 s, probes
//! every 5 s, 120 s outages. SDIMS over-counts during failures
//! (completeness exceeding 100%, approaching 180%), stays inaccurate after
//! recovery, and burns 67 Mbps steady-state (9 Mbps Pastry overhead) —
//! 5.3x Mortar at one fifth the result frequency.

use super::common::{count_peers_spec, standard_engine};
use crate::{banner, scaled};
use mortar_net::{NodeId, SimBuilder, Simulator, Topology, TrafficClass};
use mortar_sdims::{SdimsConfig, SdimsNode};

fn build(n: usize, seed: u64) -> Simulator<SdimsNode> {
    let members: Vec<NodeId> = (0..n as NodeId).collect();
    let cfg = SdimsConfig::default();
    let topo = Topology::paper_inet(n, seed);
    SimBuilder::new(topo, seed).build(move |id| SdimsNode::new(id, &members, cfg))
}

/// Runs the SDIMS comparison.
pub fn run() {
    banner("Figure 16", "SDIMS: completeness and network load under failures");
    let n = scaled(240, 680);
    let mut sim = build(n, 160);
    let root = (0..n as NodeId).find(|&i| sim.app(i).is_root()).expect("root");
    println!("aggregation root: node {root}");

    // Rolling failures like Fig. 14 but with 120 s downtime.
    sim.run_for_secs(120.0);
    let mut live = vec![(0usize, n)];
    for (i, frac) in [0.1, 0.2, 0.3, 0.4].iter().enumerate() {
        let t0 = 120 + i * 200;
        let k = (n as f64 * frac) as usize;
        let victims: Vec<NodeId> = (0..n as NodeId).filter(|&x| x != root).take(k).collect();
        for &v in &victims {
            sim.set_host_up(v, false);
        }
        live.push((t0, n - k));
        sim.run_for_secs(120.0);
        for &v in &victims {
            sim.set_host_up(v, true);
        }
        live.push((t0 + 120, n));
        sim.run_for_secs(80.0);
    }
    let end = (sim.now() / 1_000_000) as usize;

    // Completeness vs. live nodes, sampled every 20 s.
    println!("\n{:>8} {:>10} {:>14} {:>12}", "t(s)", "live", "reported", "complete(%)");
    let live_at =
        |t: usize| live.iter().rev().find(|&&(t0, _)| t0 <= t).map(|&(_, l)| l).unwrap_or(n);
    let results = sim.app(root).results.clone();
    let mut worst_over = 0.0f64;
    for t in (100..end).step_by(20) {
        let sample = results.iter().rfind(|r| (r.true_us / 1_000_000) as usize <= t);
        if let Some(r) = sample {
            let l = live_at(t);
            let pct = 100.0 * r.value / l as f64;
            worst_over = worst_over.max(pct);
            println!("{t:>8} {l:>10} {:>14.0} {pct:>12.1}", r.value);
        }
    }
    let bw = sim.bandwidth();
    let steady = bw.mean_mbps(60, 110);
    let maint = bw.mean_class_mbps(TrafficClass::Heartbeat, 60, 110)
        + bw.mean_class_mbps(TrafficClass::Control, 60, 110);
    let peak = (0..end).map(|s| bw.mbps_at(s)).fold(0.0f64, f64::max);
    println!(
        "\nSDIMS steady-state load {steady:.2} Mbps ({maint:.2} Mbps maintenance); \
         peak {peak:.2} Mbps during recovery"
    );
    println!("worst over-count: {worst_over:.0}% of live nodes (the paper sees ~180%)");

    // Mortar, same scale and failure pattern, for the bandwidth ratio at
    // five times the result frequency (1 s windows vs 5 s probes).
    let mut eng = standard_engine(n, 4, 16, 160);
    eng.install(count_peers_spec("q", n, 1_000_000)).expect("valid spec");
    eng.run_secs(110.0);
    let mortar_bw = eng.sim.bandwidth().mean_mbps(60, 110);
    println!(
        "Mortar at the same scale: {mortar_bw:.2} Mbps with 5x the result \
         frequency — SDIMS/Mortar = {:.1}x (paper: 5.3x).",
        steady / mortar_bw.max(1e-9)
    );
}
