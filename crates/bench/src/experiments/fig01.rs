//! Figure 1: result completeness under uniformly random link failures for
//! mirroring, static striping, and dynamic striping over random trees
//! (Section 2.1's motivating simulation).
//!
//! Paper setup: 10k-node random trees, branching factor 32, uniform link
//! failures, 400 trials per point; x-axis 0–40% failures.

use crate::{banner, header, row, scaled};
use mortar_overlay::{simulate_completeness, FailureSimConfig, Strategy};

/// Runs the Figure 1 sweep and prints the series.
pub fn run() {
    banner("Figure 1", "completeness vs. link failures (multipath motivation)");
    let cfg = FailureSimConfig {
        nodes: scaled(2_000, 10_000),
        branching_factor: 32,
        trials: scaled(60, 400),
        seed: 1,
        ttl_down: 3,
    };
    let levels = [0.0, 0.1, 0.2, 0.3, 0.4];
    let strategies: [(&str, Strategy); 7] = [
        ("Optimal", Strategy::Optimal { d: 4 }),
        ("Dynamic striping D=4", Strategy::DynamicStriping { d: 4 }),
        ("Dynamic striping D=2", Strategy::DynamicStriping { d: 2 }),
        ("Mirroring D=10", Strategy::Mirroring { d: 10 }),
        ("Mirroring D=2", Strategy::Mirroring { d: 2 }),
        ("Striping", Strategy::StaticStriping { d: 4 }),
        ("Single tree", Strategy::SingleTree),
    ];
    header(
        "completeness (%)",
        &levels.iter().map(|l| format!("{:.0}%", l * 100.0)).collect::<Vec<_>>(),
    );
    for (label, s) in strategies {
        let cells: Vec<f64> = levels.iter().map(|&p| simulate_completeness(&cfg, s, p)).collect();
        row(label, &cells);
        if matches!(s, Strategy::Mirroring { d: 10 }) {
            println!("{:>26}  (bandwidth factor {}x — 'not scalable')", "", s.bandwidth_factor());
        }
    }
    println!(
        "\nExpected shape (paper): striping ≈ single tree; mirroring helps only at\n\
         a 10x bandwidth cost; dynamic striping with D=2–4 tracks optimal."
    );
}
