//! Figure 11: query installation rate and coverage with inconsistent node
//! sets (Section 7.1).
//!
//! Paper setup: 680 nodes, 16 install chunks; a random subset is
//! disconnected before installation and reconnected after 30 s;
//! reconciliation runs every third heartbeat (6 s). With no failures,
//! installation covers 680 nodes in under ten seconds; with 40% down,
//! reconciliation still installs 54.5% of all nodes before reconnection.

use super::common::{count_peers_spec, standard_engine};
use crate::{banner, header, row, scaled};

/// Runs the installation sweep; prints % installed over time per failure
/// level.
pub fn run() {
    banner("Figure 11", "query installation vs. time, 0-40% of nodes down");
    let n = scaled(240, 680);
    let sample_times: Vec<f64> =
        vec![2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0];
    header(
        "% installed at t(s)=",
        &sample_times.iter().map(|t| format!("{t:.0}")).collect::<Vec<_>>(),
    );
    for fail_frac in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let mut eng = standard_engine(n, 4, 16, 101);
        let down = eng.disconnect_random(fail_frac, 0);
        eng.install(count_peers_spec("q", n, 1_000_000)).expect("valid spec");
        let mut series = Vec::new();
        let mut prev = 0.0;
        for &t in &sample_times {
            eng.run_secs(t - prev);
            prev = t;
            if (t - 30.0).abs() < 1e-9 {
                // The paper reconnects all nodes after 30 seconds.
                eng.reconnect(&down);
            }
            series.push(100.0 * eng.installed_count("q") as f64 / n as f64);
        }
        row(&format!("{:.0}% failed", fail_frac * 100.0), &series);
    }
    println!(
        "\nExpected shape (paper): <10 s to full coverage with no failures; with\n\
         failures, coverage plateaus at ~(1-f) x reachable before the 30 s\n\
         reconnection, then reconciliation (every 6 s) completes the install."
    );
}
