//! Hotpath: end-to-end wall-clock throughput of the summary data path.
//!
//! A fig13-style workload — 100 hosts, 25 ms-slide fleet-wide sum over the
//! paper's four-tree Inet topology — driven as fast as the host CPU allows.
//! The metric is **simulated seconds per real second**: how much protocol
//! time one core can push through the full peer runtime (sensor pump,
//! window close, TS-list merge, eviction, routing, frame transport). The
//! paper's evaluation never reports this axis; it is the repo's perf
//! trajectory anchor (`BENCH_hotpath.json` at the repo root).
//!
//! Ground-truth tracking is off (`track_truth: false`): that is the
//! production configuration the allocation-elimination work targets —
//! truth metadata is a simulator-only metrics aid. A second run with
//! tracking on is reported for contrast.
//!
//! Set `MORTAR_HOTPATH_BASELINE=<sim-secs-per-sec>` to embed a reference
//! baseline (e.g. the pre-optimization measurement) and a speedup factor
//! in the emitted JSON.

use super::common::count_peers_spec;
use crate::{banner, scaled};
use mortar_core::engine::{Engine, EngineConfig};
use mortar_core::metrics::mean_completeness;
use mortar_core::peer::PeerConfig;
use mortar_core::query::SensorSpec;
use std::time::Instant;

/// One timed run's measurements.
#[derive(Debug, Clone)]
pub struct HotpathOutcome {
    /// Hosts simulated.
    pub hosts: usize,
    /// Window slide, µs.
    pub slide_us: u64,
    /// Simulated seconds in the timed region (warm-up excluded).
    pub sim_secs: f64,
    /// Wall-clock seconds the timed region took.
    pub wall_secs: f64,
    /// Whether ground-truth tracking was on.
    pub track_truth: bool,
    /// TS-list evictions performed fleet-wide.
    pub evictions: u64,
    /// Summary tuples sent fleet-wide.
    pub summaries_out: u64,
    /// Summary frames sent fleet-wide (logical frames — conserved across
    /// envelope budgets).
    pub frames_out: u64,
    /// Envelope wire messages sent fleet-wide (0 with envelopes off).
    pub envelopes_out: u64,
    /// Data-class wire messages (send events): envelopes when enabled,
    /// one per frame otherwise.
    pub data_msgs: u64,
    /// Mean link-bytes per data-class message — the per-envelope
    /// accounting view (coalescing raises it while total bytes fall).
    pub mean_data_msg_bytes: f64,
    /// Peak live TS-list entries at any single peer (retained summary
    /// state — the allocation-sensitive high-water mark).
    pub ts_peak_entries: u64,
    /// Result records the root retained.
    pub results: usize,
    /// Steady-state completeness (%), a health check that the speed run
    /// still computes correct answers.
    pub completeness: f64,
}

impl HotpathOutcome {
    /// The headline metric: simulated seconds per real second.
    pub fn sim_per_real(&self) -> f64 {
        self.sim_secs / self.wall_secs.max(1e-9)
    }

    /// Summary tuples processed per wall-clock second.
    pub fn tuples_per_sec(&self) -> f64 {
        self.summaries_out as f64 / self.wall_secs.max(1e-9)
    }
}

/// Runs the hotpath workload: install + warm-up untimed, then `sim_secs`
/// of simulated time under the wall clock. Envelopes ride at the default
/// budget (the production configuration).
pub fn hotpath_run(n: usize, sim_secs: f64, seed: u64, track_truth: bool) -> HotpathOutcome {
    hotpath_run_cfg(n, sim_secs, seed, track_truth, PeerConfig::default().envelope_budget)
}

/// [`hotpath_run`] with an explicit envelope byte budget (`0` = per-query
/// frames on the wire — the pre-envelope transport).
pub fn hotpath_run_cfg(
    n: usize,
    sim_secs: f64,
    seed: u64,
    track_truth: bool,
    envelope_budget: u32,
) -> HotpathOutcome {
    let slide_us = 25_000u64;
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.peer.track_truth = track_truth;
    cfg.peer.envelope_budget = envelope_budget;
    let mut eng = Engine::new(cfg);
    let mut spec = count_peers_spec("hot", n, slide_us);
    spec.sensor = SensorSpec::Periodic { period_us: slide_us, value: 1.0 };
    eng.install(spec).expect("valid spec");
    // Warm up: installation multicast, first windows, netDist settling.
    eng.run_secs(5.0);
    let start = Instant::now();
    eng.run_secs(sim_secs);
    let wall_secs = start.elapsed().as_secs_f64();
    let (mut evictions, mut summaries_out, mut frames_out, mut envelopes_out, mut ts_peak) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for p in eng.sim.apps() {
        evictions += p.stats.evictions;
        summaries_out += p.stats.summaries_out;
        frames_out += p.stats.frames_out;
        envelopes_out += p.stats.envelopes_out;
        ts_peak = ts_peak.max(p.stats.ts_peak_entries);
    }
    let data_msgs = eng.sim.bandwidth().msgs_total(mortar_net::TrafficClass::Data);
    let mean_data_msg_bytes = eng.sim.bandwidth().mean_msg_bytes(mortar_net::TrafficClass::Data);
    let results = eng.results(0);
    HotpathOutcome {
        hosts: n,
        slide_us,
        sim_secs,
        wall_secs,
        track_truth,
        evictions,
        summaries_out,
        frames_out,
        envelopes_out,
        data_msgs,
        mean_data_msg_bytes,
        ts_peak_entries: ts_peak,
        results: results.len(),
        completeness: mean_completeness(results, n, 40),
    }
}

fn json_field(out: &mut String, key: &str, value: String) {
    out.push_str(&format!("  \"{key}\": {value},\n"));
}

/// Renders the outcome (the envelopes-on main run, the envelopes-off
/// comparison, the truth-tracking contrast, plus an optional external
/// baseline) as JSON.
pub fn to_json(
    main: &HotpathOutcome,
    plain: &HotpathOutcome,
    tracked: &HotpathOutcome,
    baseline: Option<f64>,
) -> String {
    let mut s = String::from("{\n");
    json_field(&mut s, "bench", "\"hotpath\"".into());
    json_field(&mut s, "workload", "\"100-host 25 ms-slide fleet-wide sum, 4 trees\"".into());
    json_field(&mut s, "hosts", main.hosts.to_string());
    json_field(&mut s, "slide_us", main.slide_us.to_string());
    json_field(&mut s, "sim_secs", format!("{:.1}", main.sim_secs));
    json_field(&mut s, "wall_secs", format!("{:.4}", main.wall_secs));
    json_field(&mut s, "sim_secs_per_real_sec", format!("{:.2}", main.sim_per_real()));
    json_field(&mut s, "summary_tuples_per_wall_sec", format!("{:.0}", main.tuples_per_sec()));
    json_field(&mut s, "evictions", main.evictions.to_string());
    json_field(&mut s, "summary_tuples_sent", main.summaries_out.to_string());
    json_field(&mut s, "summary_frames_sent", main.frames_out.to_string());
    json_field(&mut s, "envelopes_sent", main.envelopes_out.to_string());
    json_field(&mut s, "data_msgs", main.data_msgs.to_string());
    json_field(&mut s, "no_envelope_data_msgs", plain.data_msgs.to_string());
    json_field(&mut s, "mean_data_msg_bytes", format!("{:.1}", main.mean_data_msg_bytes));
    json_field(
        &mut s,
        "no_envelope_mean_data_msg_bytes",
        format!("{:.1}", plain.mean_data_msg_bytes),
    );
    json_field(
        &mut s,
        "envelope_msgs_saved_factor",
        format!("{:.2}", plain.data_msgs as f64 / main.data_msgs.max(1) as f64),
    );
    json_field(&mut s, "no_envelope_sim_secs_per_real_sec", format!("{:.2}", plain.sim_per_real()));
    json_field(&mut s, "ts_peak_entries", main.ts_peak_entries.to_string());
    json_field(&mut s, "results", main.results.to_string());
    json_field(&mut s, "completeness_pct", format!("{:.2}", main.completeness));
    json_field(&mut s, "track_truth", "false".into());
    json_field(&mut s, "tracked_sim_secs_per_real_sec", format!("{:.2}", tracked.sim_per_real()));
    if let Some(base) = baseline {
        json_field(&mut s, "baseline_sim_secs_per_real_sec", format!("{base:.2}"));
        json_field(&mut s, "speedup_vs_baseline", format!("{:.2}", main.sim_per_real() / base));
    }
    // Last field without the trailing comma.
    s.push_str(&format!("  \"full_scale\": {}\n}}\n", crate::full_scale()));
    s
}

/// Runs the harness and writes `BENCH_hotpath.json` at the repo root.
pub fn run() {
    banner("hotpath", "wall-clock throughput of the summary data path");
    let n = 100;
    let sim_secs = scaled(30.0, 120.0);
    // The quick-mode timed region is ~0.1 s of wall clock; take the best
    // of two runs per configuration so scheduler noise does not masquerade
    // as a protocol-level throughput difference.
    let best = |mk: &dyn Fn() -> HotpathOutcome| {
        let a = mk();
        let b = mk();
        if a.sim_per_real() >= b.sim_per_real() {
            a
        } else {
            b
        }
    };
    let plain = best(&|| hotpath_run_cfg(n, sim_secs, 13, false, 0));
    let main = best(&|| hotpath_run(n, sim_secs, 13, false));
    let tracked = best(&|| hotpath_run(n, sim_secs, 13, true));
    println!(
        "\n{n}-host 25 ms-slide sum, {sim_secs:.0} simulated seconds:\n\
         envelopes on (default): {:.2} sim-secs/real-sec ({:.0} tuples/s wall, {:.3} s wall)\n\
         envelopes off:          {:.2} sim-secs/real-sec\n\
         track_truth on:         {:.2} sim-secs/real-sec\n\
         wire: {} data messages enveloped vs {} per-query frames ({:.2}x fewer)\n\
         health: completeness {:.1}%, {} evictions, {} tuples in {} frames, peak TS entries {}",
        main.sim_per_real(),
        main.tuples_per_sec(),
        main.wall_secs,
        plain.sim_per_real(),
        tracked.sim_per_real(),
        main.data_msgs,
        plain.data_msgs,
        plain.data_msgs as f64 / main.data_msgs.max(1) as f64,
        main.completeness,
        main.evictions,
        main.summaries_out,
        main.frames_out,
        main.ts_peak_entries,
    );
    let baseline = std::env::var("MORTAR_HOTPATH_BASELINE").ok().and_then(|v| v.parse().ok());
    let json = to_json(&main, &plain, &tracked, baseline);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    if let Some(base) = baseline {
        println!("baseline {base:.2} sim-secs/real-sec → {:.2}x", main.sim_per_real() / base);
    }
}
