//! Hotpath: end-to-end wall-clock throughput of the summary data path.
//!
//! A fig13-style workload — 100 hosts, 25 ms-slide fleet-wide sum over the
//! paper's four-tree Inet topology — driven as fast as the host CPU allows.
//! The metric is **simulated seconds per real second**: how much protocol
//! time one core can push through the full peer runtime (sensor pump,
//! window close, TS-list merge, eviction, routing, frame transport). The
//! paper's evaluation never reports this axis; it is the repo's perf
//! trajectory anchor (`BENCH_hotpath.json` at the repo root).
//!
//! Ground-truth tracking is off (`track_truth: false`): that is the
//! production configuration the allocation-elimination work targets —
//! truth metadata is a simulator-only metrics aid. A second run with
//! tracking on is reported for contrast.
//!
//! Set `MORTAR_HOTPATH_BASELINE=<sim-secs-per-sec>` to embed a reference
//! baseline (e.g. the pre-optimization measurement) and a speedup factor
//! in the emitted JSON.

use super::common::count_peers_spec;
use crate::{banner, scaled};
use mortar_core::engine::{Engine, EngineConfig};
use mortar_core::metrics::mean_completeness;
use mortar_core::peer::PeerConfig;
use mortar_core::query::SensorSpec;
use std::time::Instant;

/// The 1000-host full-scale workload's window-slide tiers, µs: one
/// high-rate telemetry query plus slow 1 s and 10 s tiers.
pub const FULL_SCALE_SLIDES_US: [u64; 3] = [25_000, 1_000_000, 10_000_000];

/// Distinct key classes in the keyed GROUP-BY contrast run.
pub const KEYED_KEY_CLASSES: u64 = 16;

/// Per-window group cap of the keyed contrast run (headroom over the 16
/// live classes, so overflow never kicks in and every merge is key-wise).
pub const KEYED_GROUP_CAP: usize = 32;

/// Fleet-wide queries installed per slide tier. One 25 ms query keeps the
/// data plane hot; the twelve slow queries are idle on ≥ 96% of ticks —
/// the regime the due index exists for. The full scan pays 13 query
/// passes per peer per tick regardless; due-driven ticks pay ~2.
pub const FULL_SCALE_QUERIES_PER_SLIDE: [usize; 3] = [1, 4, 8];

/// One timed run's measurements.
#[derive(Debug, Clone)]
pub struct HotpathOutcome {
    /// Hosts simulated.
    pub hosts: usize,
    /// Window slide, µs.
    pub slide_us: u64,
    /// Simulated seconds in the timed region (warm-up excluded).
    pub sim_secs: f64,
    /// Wall-clock seconds the timed region took.
    pub wall_secs: f64,
    /// Whether ground-truth tracking was on.
    pub track_truth: bool,
    /// TS-list evictions performed fleet-wide.
    pub evictions: u64,
    /// Summary tuples sent fleet-wide.
    pub summaries_out: u64,
    /// Summary frames sent fleet-wide (logical frames — conserved across
    /// envelope budgets).
    pub frames_out: u64,
    /// Envelope wire messages sent fleet-wide (0 with envelopes off).
    pub envelopes_out: u64,
    /// Data-class wire messages (send events): envelopes when enabled,
    /// one per frame otherwise.
    pub data_msgs: u64,
    /// Mean link-bytes per data-class message — the per-envelope
    /// accounting view (coalescing raises it while total bytes fall).
    pub mean_data_msg_bytes: f64,
    /// Peak live TS-list entries at any single peer (retained summary
    /// state — the allocation-sensitive high-water mark).
    pub ts_peak_entries: u64,
    /// Result records the root retained.
    pub results: usize,
    /// Steady-state completeness (%), a health check that the speed run
    /// still computes correct answers.
    pub completeness: f64,
}

impl HotpathOutcome {
    /// The headline metric: simulated seconds per real second.
    pub fn sim_per_real(&self) -> f64 {
        self.sim_secs / self.wall_secs.max(1e-9)
    }

    /// Summary tuples processed per wall-clock second.
    pub fn tuples_per_sec(&self) -> f64 {
        self.summaries_out as f64 / self.wall_secs.max(1e-9)
    }
}

/// Runs the hotpath workload: install + warm-up untimed, then `sim_secs`
/// of simulated time under the wall clock. Envelopes ride at the default
/// budget and ticks are due-driven (the production configuration).
pub fn hotpath_run(n: usize, sim_secs: f64, seed: u64, track_truth: bool) -> HotpathOutcome {
    hotpath_run_cfg(n, sim_secs, seed, track_truth, PeerConfig::default().envelope_budget, true)
}

/// [`hotpath_run`] with an explicit envelope byte budget (`0` = per-query
/// frames on the wire — the pre-envelope transport) and tick-scheduling
/// discipline (`due_driven = false` = the legacy every-query full scan).
pub fn hotpath_run_cfg(
    n: usize,
    sim_secs: f64,
    seed: u64,
    track_truth: bool,
    envelope_budget: u32,
    due_driven: bool,
) -> HotpathOutcome {
    let slide_us = 25_000u64;
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.peer.track_truth = track_truth;
    cfg.peer.envelope_budget = envelope_budget;
    cfg.peer.due_driven_ticks = due_driven;
    let mut eng = Engine::new(cfg).expect("valid config");
    let mut spec = count_peers_spec("hot", n, slide_us);
    spec.sensor = SensorSpec::Periodic { period_us: slide_us, value: 1.0 };
    eng.install(spec).expect("valid spec");
    // Warm up: installation multicast, first windows, netDist settling.
    eng.run_secs(5.0);
    let start = Instant::now();
    eng.run_secs(sim_secs);
    let wall_secs = start.elapsed().as_secs_f64();
    collect_outcome(&eng, n, slide_us, sim_secs, wall_secs, track_truth)
}

/// Sums the fleet-wide counters and result health of a finished timed run.
fn collect_outcome(
    eng: &Engine,
    n: usize,
    slide_us: u64,
    sim_secs: f64,
    wall_secs: f64,
    track_truth: bool,
) -> HotpathOutcome {
    let (mut evictions, mut summaries_out, mut frames_out, mut envelopes_out, mut ts_peak) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for p in eng.sim.apps() {
        evictions += p.stats.evictions;
        summaries_out += p.stats.summaries_out;
        frames_out += p.stats.frames_out;
        envelopes_out += p.stats.envelopes_out;
        ts_peak = ts_peak.max(p.stats.ts_peak_entries);
    }
    let data_msgs = eng.sim.bandwidth().msgs_total(mortar_net::TrafficClass::Data);
    let mean_data_msg_bytes = eng.sim.bandwidth().mean_msg_bytes(mortar_net::TrafficClass::Data);
    let results = eng.results(0);
    HotpathOutcome {
        hosts: n,
        slide_us,
        sim_secs,
        wall_secs,
        track_truth,
        evictions,
        summaries_out,
        frames_out,
        envelopes_out,
        data_msgs,
        mean_data_msg_bytes,
        ts_peak_entries: ts_peak,
        results: results.len(),
        completeness: mean_completeness(results, n, 40),
    }
}

/// The keyed GROUP-BY contrast: the same 100-host 25 ms cadence, but the
/// sum is grouped by the tuple's routing key ([`KEYED_KEY_CLASSES`]
/// classes, cap [`KEYED_GROUP_CAP`]). Per-key maps lift at the sources,
/// split across the sibling trees by key range at every eviction hop and
/// re-merge key-wise on the way up — the map-valued hot path measured
/// against the scalar rows above.
pub fn keyed_hotpath_run(n: usize, sim_secs: f64, seed: u64) -> HotpathOutcome {
    use mortar_core::op::{KeyField, OpKind};
    use mortar_core::query::QuerySpec;
    use mortar_core::tuple::RawTuple;
    use mortar_core::window::WindowSpec;
    use mortar_net::NodeId;

    let slide_us = 25_000u64;
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.peer.track_truth = false;
    let mut eng = Engine::new(cfg).expect("valid config");
    // One tuple per slide per host, keyed by `host % KEYED_KEY_CLASSES`;
    // the trace covers warm-up plus the timed region with a tail of slack.
    let steps = ((sim_secs + 6.0) * 1_000_000.0 / slide_us as f64) as u64;
    for i in 0..n {
        let key = i as u64 % KEYED_KEY_CLASSES;
        let trace: Vec<(u64, RawTuple)> = (0..steps)
            .map(|s| (s * slide_us + slide_us / 2, RawTuple { key, vals: vec![1.0] }))
            .collect();
        eng.sim.app_mut(i as NodeId).set_replay(trace);
    }
    let spec = QuerySpec {
        name: "keyed_hot".into(),
        root: 0,
        members: (0..n as NodeId).collect(),
        op: OpKind::Keyed {
            key_field: KeyField::TupleKey,
            cap: KEYED_GROUP_CAP,
            inner: Box::new(OpKind::Sum { field: 0 }),
        },
        window: WindowSpec::time_tumbling_us(slide_us),
        filter: None,
        sensor: SensorSpec::Replay,
        post: None,
    };
    eng.install(spec).expect("valid spec");
    // Warm up: installation multicast, first windows, netDist settling.
    eng.run_secs(5.0);
    let start = Instant::now();
    eng.run_secs(sim_secs);
    let wall_secs = start.elapsed().as_secs_f64();
    collect_outcome(&eng, n, slide_us, sim_secs, wall_secs, false)
}

/// One full-scale (1000-host, mixed-slide, multi-query) run's measurements.
#[derive(Debug, Clone)]
pub struct FullScaleOutcome {
    /// Hosts simulated.
    pub hosts: usize,
    /// Simulator shards (worker threads) that drove the run; 1 is the
    /// legacy single-threaded event loop.
    pub shards: usize,
    /// Installed queries (one per slide in [`FULL_SCALE_SLIDES_US`]).
    pub queries: usize,
    /// Simulated seconds in the timed region.
    pub sim_secs: f64,
    /// Wall-clock seconds the timed region took.
    pub wall_secs: f64,
    /// Mean per-query tick passes actually run per timer tick, fleet-wide.
    /// The full scan pins this at the installed query count; the due
    /// index drops it to the work actually due.
    pub wakeups_per_tick: f64,
    /// Fraction of ticks (%) on which no query was due at all.
    pub idle_tick_pct: f64,
    /// Steady-state completeness (%) of the high-rate query.
    pub completeness_fast: f64,
    /// TS-list evictions performed fleet-wide.
    pub evictions: u64,
    /// Summary tuples sent fleet-wide.
    pub summaries_out: u64,
}

impl FullScaleOutcome {
    /// Simulated seconds per real second.
    pub fn sim_per_real(&self) -> f64 {
        self.sim_secs / self.wall_secs.max(1e-9)
    }
}

/// Runs the 1000-host mixed-slide workload: three fleet-wide sums whose
/// slides (and sensor cadences) span 25 ms to 10 s, with tick scheduling
/// due-driven or full-scan. The slow queries make most (query, tick)
/// pairs idle, which is exactly what the due index converts from scan
/// cost into nothing.
pub fn full_scale_run(
    n: usize,
    sim_secs: f64,
    seed: u64,
    due_driven: bool,
    shards: usize,
) -> FullScaleOutcome {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.peer.track_truth = false;
    cfg.peer.due_driven_ticks = due_driven;
    cfg.shards = shards;
    let mut eng = Engine::new(cfg).expect("valid config");
    let mut qi = 0;
    for (tier, &slide_us) in FULL_SCALE_SLIDES_US.iter().enumerate() {
        for _ in 0..FULL_SCALE_QUERIES_PER_SLIDE[tier] {
            let mut spec = count_peers_spec(&format!("scale{qi}"), n, slide_us);
            spec.sensor = SensorSpec::Periodic { period_us: slide_us, value: 1.0 };
            eng.install(spec).expect("valid spec");
            qi += 1;
        }
    }
    // Warm up: installation multicast, first windows, netDist settling.
    eng.run_secs(5.0);
    let start = Instant::now();
    eng.run_secs(sim_secs);
    let wall_secs = start.elapsed().as_secs_f64();
    let (mut ticks, mut idle, mut wakeups, mut evictions, mut summaries_out) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for p in eng.sim.apps() {
        ticks += p.stats.ticks;
        idle += p.stats.idle_ticks;
        wakeups += p.stats.query_wakeups;
        evictions += p.stats.evictions;
        summaries_out += p.stats.summaries_out;
    }
    let fast: Vec<_> = eng.results(0).iter().filter(|r| &*r.query == "scale0").cloned().collect();
    FullScaleOutcome {
        hosts: n,
        shards,
        queries: FULL_SCALE_QUERIES_PER_SLIDE.iter().sum(),
        sim_secs,
        wall_secs,
        wakeups_per_tick: wakeups as f64 / ticks.max(1) as f64,
        idle_tick_pct: 100.0 * idle as f64 / ticks.max(1) as f64,
        completeness_fast: mean_completeness(&fast, n, 40),
        evictions,
        summaries_out,
    }
}

/// Measures heap allocations across a window of steady-state **idle**
/// ticks (warm peer, three installed 10 s-slide queries, no due instant
/// inside the window) and returns `(allocs, window_sim_secs)`. Requires
/// the counting allocator the hotpath binary installs; panics if the
/// probe is not wired in, so a broken setup can never report a
/// vacuous zero.
///
/// Keep the scenario (topology, query cadences, 7 s warm-up past the
/// first hash-carrying heartbeat, window clear of the 10 s dues) in
/// lockstep with `crates/core/tests/alloc_hotpath.rs::
/// idle_steady_state_ticks_are_alloc_free` — the unit pin and this CI
/// gate must measure the same regime.
pub fn idle_alloc_run() -> (u64, f64) {
    use mortar_core::msg::MortarMsg;
    use mortar_core::op::{OpKind, OpRegistry};
    use mortar_core::peer::MortarPeer;
    use mortar_core::query::{build_records, QueryId, QuerySpec};
    use mortar_core::window::WindowSpec;
    use mortar_net::{SimBuilder, Topology};
    use mortar_overlay::{Tree, TreeSet};
    use std::sync::Arc;

    let cfg = PeerConfig { track_truth: false, ..PeerConfig::default() };
    let reg = OpRegistry::new();
    let mut sim = SimBuilder::new(Topology::star(2, 1_000), 11)
        .build(move |id| MortarPeer::new(id, cfg, reg.clone()));
    for qi in 1..=3u32 {
        let spec = QuerySpec {
            name: format!("slow{qi}"),
            root: 0,
            members: vec![0],
            op: OpKind::Sum { field: 0 },
            window: WindowSpec::time_tumbling_us(10_000_000),
            filter: None,
            sensor: SensorSpec::Periodic { period_us: 10_000_000, value: 1.0 },
            post: None,
        };
        let trees = TreeSet::new(vec![Tree::from_parents(0, vec![None])]);
        let records = build_records(&spec.members, &trees);
        let msg = MortarMsg::Install {
            spec: Arc::new(spec),
            id: QueryId(qi),
            seq: qi as u64,
            records,
            issue_age_us: 0,
        };
        sim.inject(0, 0, msg, 256);
    }
    // Warm past the first hash-carrying heartbeat; the first due instants
    // (10 s slides) stay outside the measured window.
    sim.run_for_secs(7.0);
    assert!(
        crate::alloc_probe::probe_active(),
        "counting allocator not installed; run via the hotpath bench binary"
    );
    let window_sim_secs = 2.4;
    let (allocs, _) = crate::alloc_probe::count_allocs(|| sim.run_for_secs(window_sim_secs));
    (allocs, window_sim_secs)
}

fn json_field(out: &mut String, key: &str, value: String) {
    out.push_str(&format!("  \"{key}\": {value},\n"));
}

/// Renders a numeric array field: `[a, b, c]`.
fn json_array<T, F: Fn(&T) -> String>(items: &[T], fmt: F) -> String {
    format!("[{}]", items.iter().map(fmt).collect::<Vec<_>>().join(", "))
}

/// Shard counts to sweep at full scale. `--shards 1,2,4` (after `--` with
/// `cargo bench`) or `MORTAR_HOTPATH_SHARDS=1,2,4` overrides; 1 is always
/// forced in (it is the artifact's baseline row).
pub fn shard_counts() -> Vec<usize> {
    let parse = |spec: &str| -> Vec<usize> {
        spec.split(',').filter_map(|t| t.trim().parse::<usize>().ok()).filter(|&s| s > 0).collect()
    };
    let mut picked: Option<Vec<usize>> = None;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--shards" {
            picked = args.next().map(|v| parse(&v));
        } else if let Some(v) = a.strip_prefix("--shards=") {
            picked = Some(parse(v));
        }
    }
    if picked.is_none() {
        picked = std::env::var("MORTAR_HOTPATH_SHARDS").ok().map(|v| parse(&v));
    }
    let mut shards = picked.unwrap_or_else(|| vec![1, 2, 4, 8]);
    if !shards.contains(&1) {
        shards.push(1);
    }
    shards.sort_unstable();
    shards.dedup();
    shards
}

/// Renders the outcome (the envelopes-on main run, the envelopes-off
/// comparison, the truth-tracking and full-scan contrasts, the idle-tick
/// allocation probe, the 1000-host full-scale rows, plus an optional
/// external baseline) as JSON.
#[allow(clippy::too_many_arguments)]
pub fn to_json(
    main: &HotpathOutcome,
    plain: &HotpathOutcome,
    tracked: &HotpathOutcome,
    scan: &HotpathOutcome,
    keyed: &HotpathOutcome,
    idle: (u64, f64),
    full: &FullScaleOutcome,
    full_scan: &FullScaleOutcome,
    shard_rows: &[FullScaleOutcome],
    baseline: Option<f64>,
) -> String {
    let mut s = String::from("{\n");
    json_field(&mut s, "bench", "\"hotpath\"".into());
    json_field(&mut s, "workload", "\"100-host 25 ms-slide fleet-wide sum, 4 trees\"".into());
    json_field(&mut s, "hosts", main.hosts.to_string());
    json_field(&mut s, "slide_us", main.slide_us.to_string());
    json_field(&mut s, "sim_secs", format!("{:.1}", main.sim_secs));
    json_field(&mut s, "wall_secs", format!("{:.4}", main.wall_secs));
    json_field(&mut s, "sim_secs_per_real_sec", format!("{:.2}", main.sim_per_real()));
    json_field(&mut s, "summary_tuples_per_wall_sec", format!("{:.0}", main.tuples_per_sec()));
    json_field(&mut s, "evictions", main.evictions.to_string());
    json_field(&mut s, "summary_tuples_sent", main.summaries_out.to_string());
    json_field(&mut s, "summary_frames_sent", main.frames_out.to_string());
    json_field(&mut s, "envelopes_sent", main.envelopes_out.to_string());
    json_field(&mut s, "data_msgs", main.data_msgs.to_string());
    json_field(&mut s, "no_envelope_data_msgs", plain.data_msgs.to_string());
    json_field(&mut s, "mean_data_msg_bytes", format!("{:.1}", main.mean_data_msg_bytes));
    json_field(
        &mut s,
        "no_envelope_mean_data_msg_bytes",
        format!("{:.1}", plain.mean_data_msg_bytes),
    );
    json_field(
        &mut s,
        "envelope_msgs_saved_factor",
        format!("{:.2}", plain.data_msgs as f64 / main.data_msgs.max(1) as f64),
    );
    json_field(&mut s, "no_envelope_sim_secs_per_real_sec", format!("{:.2}", plain.sim_per_real()));
    json_field(&mut s, "ts_peak_entries", main.ts_peak_entries.to_string());
    json_field(&mut s, "results", main.results.to_string());
    json_field(&mut s, "completeness_pct", format!("{:.2}", main.completeness));
    json_field(&mut s, "track_truth", "false".into());
    json_field(&mut s, "tracked_sim_secs_per_real_sec", format!("{:.2}", tracked.sim_per_real()));
    json_field(&mut s, "scan_ticks_sim_secs_per_real_sec", format!("{:.2}", scan.sim_per_real()));
    // The keyed GROUP-BY contrast: map-valued partials over the same
    // cadence, riding the key-range split across the sibling trees.
    json_field(&mut s, "keyed_key_classes", KEYED_KEY_CLASSES.to_string());
    json_field(&mut s, "keyed_group_cap", KEYED_GROUP_CAP.to_string());
    json_field(&mut s, "keyed_sim_secs_per_real_sec", format!("{:.2}", keyed.sim_per_real()));
    json_field(&mut s, "keyed_summary_tuples_sent", keyed.summaries_out.to_string());
    json_field(&mut s, "keyed_mean_data_msg_bytes", format!("{:.1}", keyed.mean_data_msg_bytes));
    json_field(&mut s, "keyed_ts_peak_entries", keyed.ts_peak_entries.to_string());
    json_field(&mut s, "keyed_completeness_pct", format!("{:.2}", keyed.completeness));
    // Steady-state allocation discipline: heap allocations per simulated
    // second across a window of warm idle ticks. The tentpole pin is 0.
    let (idle_allocs, idle_window) = idle;
    json_field(
        &mut s,
        "allocs_per_sim_sec",
        format!("{:.2}", idle_allocs as f64 / idle_window.max(1e-9)),
    );
    json_field(&mut s, "idle_alloc_window_sim_secs", format!("{idle_window:.1}"));
    // The 1000-host mixed-slide row: the due index proven at scale.
    json_field(&mut s, "full_scale_hosts", full.hosts.to_string());
    json_field(&mut s, "full_scale_queries", full.queries.to_string());
    json_field(
        &mut s,
        "full_scale_slides_us",
        format!("[{}]", FULL_SCALE_SLIDES_US.map(|v| v.to_string()).join(", ")),
    );
    json_field(&mut s, "full_scale_sim_secs", format!("{:.1}", full.sim_secs));
    json_field(&mut s, "full_scale_wall_secs", format!("{:.4}", full.wall_secs));
    json_field(&mut s, "full_scale_sim_secs_per_real_sec", format!("{:.2}", full.sim_per_real()));
    json_field(
        &mut s,
        "full_scale_scan_sim_secs_per_real_sec",
        format!("{:.2}", full_scan.sim_per_real()),
    );
    json_field(&mut s, "full_scale_wakeups_per_tick", format!("{:.3}", full.wakeups_per_tick));
    json_field(
        &mut s,
        "full_scale_scan_wakeups_per_tick",
        format!("{:.3}", full_scan.wakeups_per_tick),
    );
    json_field(&mut s, "full_scale_idle_tick_pct", format!("{:.2}", full.idle_tick_pct));
    json_field(&mut s, "full_scale_completeness_pct", format!("{:.2}", full.completeness_fast));
    json_field(&mut s, "full_scale_evictions", full.evictions.to_string());
    json_field(&mut s, "full_scale_summary_tuples_sent", full.summaries_out.to_string());
    // The shard-scaling sweep: the same due-driven workload driven by
    // 1..N worker threads. Determinism makes every non-throughput column
    // identical across rows; CI gates on that and on the speedup when the
    // machine actually has the cores.
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    json_field(&mut s, "shards_available_parallelism", cores.to_string());
    json_field(&mut s, "full_scale_shards", json_array(shard_rows, |r| r.shards.to_string()));
    json_field(
        &mut s,
        "full_scale_shards_sim_secs_per_real_sec",
        json_array(shard_rows, |r| format!("{:.2}", r.sim_per_real())),
    );
    json_field(
        &mut s,
        "full_scale_shards_completeness_pct",
        json_array(shard_rows, |r| format!("{:.2}", r.completeness_fast)),
    );
    json_field(
        &mut s,
        "full_scale_shards_evictions",
        json_array(shard_rows, |r| r.evictions.to_string()),
    );
    json_field(
        &mut s,
        "full_scale_shards_summary_tuples_sent",
        json_array(shard_rows, |r| r.summaries_out.to_string()),
    );
    if let Some(base_row) = shard_rows.iter().find(|r| r.shards == 1) {
        json_field(
            &mut s,
            "full_scale_shards_speedup",
            json_array(shard_rows, |r| {
                format!("{:.2}", r.sim_per_real() / base_row.sim_per_real().max(1e-9))
            }),
        );
    }
    if let Some(base) = baseline {
        json_field(&mut s, "baseline_sim_secs_per_real_sec", format!("{base:.2}"));
        json_field(&mut s, "speedup_vs_baseline", format!("{:.2}", main.sim_per_real() / base));
    }
    // Last field without the trailing comma. The artifact now always
    // carries the 1000-host full-scale row above, whatever the quick/full
    // sweep scale of the other harnesses.
    s.push_str("  \"full_scale\": true\n}\n");
    s
}

/// Runs the harness and writes `BENCH_hotpath.json` at the repo root.
pub fn run() {
    banner("hotpath", "wall-clock throughput of the summary data path");
    let n = 100;
    let sim_secs = scaled(30.0, 120.0);
    // The quick-mode timed region is ~0.1 s of wall clock; take the best
    // of two runs per configuration so scheduler noise does not masquerade
    // as a protocol-level throughput difference.
    let best = |mk: &dyn Fn() -> HotpathOutcome| {
        let a = mk();
        let b = mk();
        if a.sim_per_real() >= b.sim_per_real() {
            a
        } else {
            b
        }
    };
    let plain = best(&|| hotpath_run_cfg(n, sim_secs, 13, false, 0, true));
    let main = best(&|| hotpath_run(n, sim_secs, 13, false));
    let tracked = best(&|| hotpath_run(n, sim_secs, 13, true));
    let scan = best(&|| {
        hotpath_run_cfg(n, sim_secs, 13, false, PeerConfig::default().envelope_budget, false)
    });
    let keyed = best(&|| keyed_hotpath_run(n, sim_secs, 13));
    println!(
        "\n{n}-host 25 ms-slide sum, {sim_secs:.0} simulated seconds:\n\
         envelopes on (default): {:.2} sim-secs/real-sec ({:.0} tuples/s wall, {:.3} s wall)\n\
         envelopes off:          {:.2} sim-secs/real-sec\n\
         track_truth on:         {:.2} sim-secs/real-sec\n\
         full-scan ticks:        {:.2} sim-secs/real-sec\n\
         wire: {} data messages enveloped vs {} per-query frames ({:.2}x fewer)\n\
         health: completeness {:.1}%, {} evictions, {} tuples in {} frames, peak TS entries {}",
        main.sim_per_real(),
        main.tuples_per_sec(),
        main.wall_secs,
        plain.sim_per_real(),
        tracked.sim_per_real(),
        scan.sim_per_real(),
        main.data_msgs,
        plain.data_msgs,
        plain.data_msgs as f64 / main.data_msgs.max(1) as f64,
        main.completeness,
        main.evictions,
        main.summaries_out,
        main.frames_out,
        main.ts_peak_entries,
    );
    println!(
        "\nkeyed GROUP-BY contrast ({KEYED_KEY_CLASSES} key classes, cap {KEYED_GROUP_CAP}):\n\
         per-key maps:           {:.2} sim-secs/real-sec \
         ({} tuples, {:.1} B/msg, completeness {:.1}%, peak TS entries {})",
        keyed.sim_per_real(),
        keyed.summaries_out,
        keyed.mean_data_msg_bytes,
        keyed.completeness,
        keyed.ts_peak_entries,
    );
    // Steady-state allocation discipline across warm idle ticks.
    let idle = idle_alloc_run();
    println!(
        "\nidle steady-state ticks: {} allocations over {:.1} simulated seconds \
         ({:.2} allocs/sim-sec)",
        idle.0,
        idle.1,
        idle.0 as f64 / idle.1
    );
    // The 1000-host mixed-slide full-scale row: due-driven vs full scan.
    let full_hosts = 1_000;
    let full_secs = scaled(15.0, 60.0);
    // Single runs: the timed region is long enough (15+ simulated
    // seconds over 1000 hosts) that scheduler noise stays in the noise.
    let full = full_scale_run(full_hosts, full_secs, 13, true, 1);
    let full_scan_ticks = full_scale_run(full_hosts, full_secs, 13, false, 1);
    println!(
        "\n{full_hosts}-host mixed-slide fleet (slides {FULL_SCALE_SLIDES_US:?} µs, \
         {full_secs:.0} simulated seconds):\n\
         due-driven ticks: {:.2} sim-secs/real-sec, {:.3} query wakeups/tick \
         ({:.1}% ticks fully idle)\n\
         full-scan ticks:  {:.2} sim-secs/real-sec, {:.3} query wakeups/tick\n\
         health: fast-query completeness {:.1}%, {} evictions, {} tuples",
        full.sim_per_real(),
        full.wakeups_per_tick,
        full.idle_tick_pct,
        full_scan_ticks.sim_per_real(),
        full_scan_ticks.wakeups_per_tick,
        full.completeness_fast,
        full.evictions,
        full.summaries_out,
    );
    // The shard-scaling sweep: the same due-driven workload across worker
    // thread counts. Shards = 1 reuses the row above (identical config);
    // determinism demands every non-throughput column match it exactly.
    let shards = shard_counts();
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let shard_rows: Vec<FullScaleOutcome> =
        shards
            .iter()
            .map(|&s| {
                if s == 1 {
                    full.clone()
                } else {
                    full_scale_run(full_hosts, full_secs, 13, true, s)
                }
            })
            .collect();
    println!(
        "\nshard scaling ({full_hosts} hosts, {} cores available):\n\
         {:>8} {:>18} {:>10} {:>14} {:>12} {:>14}",
        cores, "shards", "sim-s/real-s", "speedup", "completeness", "evictions", "tuples",
    );
    let base_rate = full.sim_per_real().max(1e-9);
    for r in &shard_rows {
        println!(
            "{:>8} {:>18.2} {:>9.2}x {:>13.2}% {:>12} {:>14}",
            r.shards,
            r.sim_per_real(),
            r.sim_per_real() / base_rate,
            r.completeness_fast,
            r.evictions,
            r.summaries_out,
        );
        assert_eq!(
            (r.evictions, r.summaries_out, r.completeness_fast.to_bits()),
            (full.evictions, full.summaries_out, full.completeness_fast.to_bits()),
            "shards={} run diverged from the single-threaded baseline",
            r.shards
        );
    }
    let baseline = std::env::var("MORTAR_HOTPATH_BASELINE").ok().and_then(|v| v.parse().ok());
    let json = to_json(
        &main,
        &plain,
        &tracked,
        &scan,
        &keyed,
        idle,
        &full,
        &full_scan_ticks,
        &shard_rows,
        baseline,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    if let Some(base) = baseline {
        println!("baseline {base:.2} sim-secs/real-sec → {:.2}x", main.sim_per_real() / base);
    }
}
