//! Figure 18: the Wi-Fi location service (Section 7.4).
//!
//! Paper setup: 188 sniffers replayed over a 1 ms star topology; a user
//! circles the four hallways while downloading; the three-line MSL query
//! (select → topk(3) → trilat) recovers the L-shaped path. Allowing the
//! TopK to aggregate in-network (bf 16) cut total network load by 14%
//! relative to a flat bf=188 query that still performed the distributed
//! select.

use crate::{banner, scaled};
use mortar_core::engine::{Engine, EngineConfig};
use mortar_core::op::OpRegistry;
use mortar_core::query::SensorSpec;
use mortar_core::value::AggState;
use mortar_net::{NodeId, Topology};
use mortar_wifi::{TrilatOp, WifiScenario, WifiScenarioConfig};
use std::sync::Arc;

/// Runs the query; `aggregate = false` is the paper's bf=(n−1) reference:
/// the TopK is not allowed to aggregate below the root, so every selected
/// frame ships to the root as a union row.
fn run_once(scenario: &WifiScenario, bf: usize, secs: f64, aggregate: bool) -> (f64, usize, f64) {
    let n = scenario.sniffers.len();
    let program = if aggregate {
        format!(
            "stream wifi(rssi, x, y);\n\
             frames = select(wifi, key == {});\n\
             loud = topk(frames, 3, rssi) window 1s;\n\
             position = trilat(loud);",
            scenario.mac
        )
    } else {
        format!(
            "stream wifi(rssi, x, y);\n\
             frames = select(wifi, key == {});\n\
             all = union(frames, 4096) window 1s;",
            scenario.mac
        )
    };
    let def = mortar_lang::compile(&program).expect("valid MSL");
    let mut registry = OpRegistry::new();
    registry.register("trilat", Arc::new(TrilatOp::new()));
    let mut cfg = EngineConfig::paper(n, 18);
    cfg.topology = Topology::star(n, 1_000);
    cfg.plan_on_true_latency = true;
    cfg.planner.branching_factor = bf;
    // A bf of n-1 yields a flat one-level "tree": no in-network merging.
    let mut eng = Engine::with_registry(cfg, registry).expect("valid config");
    for (i, trace) in scenario.traces.iter().enumerate() {
        eng.sim.app_mut(i as NodeId).set_replay(trace.clone());
    }
    eng.install(def.to_spec(0, (0..n as NodeId).collect(), SensorSpec::Replay))
        .expect("valid spec");
    eng.run_secs(secs + 10.0);

    let mut estimates = Vec::new();
    for r in eng.results(0) {
        if let AggState::Vector(v) = &r.state {
            if v.len() == 2 {
                let behind = (r.due_lag_us.max(0) + 500_000) as u64;
                estimates.push((r.emit_true_us.saturating_sub(behind), v[0], v[1]));
            }
        }
    }
    let err = scenario.mean_error(&estimates);
    let horizon = (secs as usize) + 8;
    let load = eng.sim.bandwidth().mean_mbps(10, horizon);
    (err, estimates.len(), load)
}

/// Runs the Wi-Fi tracking experiment.
pub fn run() {
    banner("Figure 18", "Wi-Fi location service: select -> topk(3) -> trilat");
    let secs = scaled(60.0, 180.0);
    let cfg = WifiScenarioConfig { duration_s: secs, ..WifiScenarioConfig::default() };
    let scenario = WifiScenario::generate(&cfg);
    println!(
        "{} sniffers over a {:.0}x{:.0} m floor; user walks the hallway loop at \
         {:.1} m/s",
        scenario.sniffers.len(),
        cfg.floor_w,
        cfg.floor_h,
        cfg.speed
    );
    let (err_agg, n_est, load_agg) = run_once(&scenario, 16, secs, true);
    let (_, _, load_flat) = run_once(&scenario, scenario.sniffers.len() - 1, secs, false);
    println!("\naggregating query (bf=16):  mean error {err_agg:.1} m over {n_est} estimates");
    println!(
        "network load: aggregated {load_agg:.3} Mbps vs select-only bf={} \
         {load_flat:.3} Mbps — {:.0}% reduction (paper: 14%)",
        scenario.sniffers.len() - 1,
        100.0 * (1.0 - load_agg / load_flat.max(1e-9))
    );
    println!(
        "the naive trilateration recovers the L-shaped hallway path \
         (paper: same; floors were indistinguishable)"
    );
}
