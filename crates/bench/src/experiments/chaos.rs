//! Chaos harness: seeded scenario sweep plus the digest-vs-full-map
//! anti-entropy head-to-head; emits `BENCH_chaos.json` at the repo root.
//!
//! Two measurements back the robustness story (paper Sections 4.3–4.4):
//!
//! * **Scenario sweep** — generated fault schedules (loss/dup/jitter,
//!   partitions, churn, clock skew, install/remove storms) run through
//!   the property oracles. The artifact records per-seed outcomes; a
//!   clean sweep means every scenario converged, kept removed queries
//!   removed, and held the completeness floor after healing.
//! * **Anti-entropy head-to-head** — one churn-storm scenario (five
//!   hosts dead through an install storm of ~130 queries and a remove
//!   storm, then revived) run under digest reconciliation and again
//!   under full-map exchanges. Both must converge the fleet to the same
//!   store sets; the artifact records the wire bytes each spent doing
//!   it, which is the savings `EXPERIMENTS.md` tabulates.

use crate::{banner, scaled};
use mortar_chaos::{run_scenario, sweep, Fault, RunConfig, RunReport, Scenario};

/// Hosts in each generated sweep scenario.
pub const SWEEP_HOSTS: usize = 24;
/// Fault-window length of each generated sweep scenario, ms.
pub const SWEEP_DURATION_MS: u64 = 30_000;

/// The churn-storm head-to-head scenario: workload churn against a
/// partially dead fleet, healed late. Matches the digest-savings
/// acceptance test in `crates/chaos/tests/acceptance.rs`.
pub fn churn_storm() -> Scenario {
    Scenario::new(11, 20, 15_000)
        .at(0, Fault::Kill { nodes: vec![2, 5, 9, 13, 17] })
        .at(1_000, Fault::InstallStorm { count: 30 })
        .at(3_000, Fault::RemoveStorm { count: 10 })
        .at(10_000, Fault::Revive { nodes: vec![2, 5, 9, 13, 17] })
}

fn head_to_head_config(digest: bool) -> RunConfig {
    let mut cfg = RunConfig {
        base_queries: 100,
        members_per_query: 3,
        settle_secs: 0.0,
        converge_secs: 30.0,
        digest_reconcile: digest,
        ..RunConfig::default()
    };
    cfg.oracles.completeness_floor = 0.0;
    cfg
}

fn json_field(out: &mut String, key: &str, value: String) {
    out.push_str(&format!("  \"{key}\": {value},\n"));
}

fn json_array<T, F: Fn(&T) -> String>(items: &[T], fmt: F) -> String {
    format!("[{}]", items.iter().map(fmt).collect::<Vec<_>>().join(", "))
}

/// Renders the sweep outcomes and the two head-to-head runs as JSON.
pub fn to_json(outcomes: &[(u64, RunReport)], digest: &RunReport, full: &RunReport) -> String {
    let mut s = String::from("{\n");
    json_field(&mut s, "bench", "\"chaos\"".into());
    json_field(
        &mut s,
        "sweep_workload",
        format!(
            "\"{SWEEP_HOSTS}-host generated scenarios, {} s fault window\"",
            SWEEP_DURATION_MS / 1000
        ),
    );
    json_field(&mut s, "sweep_seeds", outcomes.len().to_string());
    json_field(
        &mut s,
        "sweep_failures",
        outcomes.iter().filter(|(_, r)| r.failed()).count().to_string(),
    );
    json_field(&mut s, "sweep_seed", json_array(outcomes, |(seed, _)| seed.to_string()));
    json_field(
        &mut s,
        "sweep_violations",
        json_array(outcomes, |(_, r)| r.violations.len().to_string()),
    );
    json_field(
        &mut s,
        "sweep_fingerprint",
        json_array(outcomes, |(_, r)| format!("\"{:#018x}\"", r.fingerprint)),
    );
    json_field(
        &mut s,
        "sweep_reconcile_bytes",
        json_array(outcomes, |(_, r)| r.reconcile_bytes.to_string()),
    );
    json_field(
        &mut s,
        "sweep_mean_completeness_pct",
        json_array(outcomes, |(_, r)| {
            let c = &r.completeness;
            format!("{:.1}", c.iter().sum::<f64>() / c.len().max(1) as f64)
        }),
    );

    json_field(&mut s, "head_to_head_scenario", "\"churn-storm (seed 11, 20 hosts)\"".into());
    json_field(&mut s, "head_to_head_queries", digest.installed_total.to_string());
    json_field(
        &mut s,
        "stores_converged_equal",
        (digest.stores_fingerprint == full.stores_fingerprint).to_string(),
    );
    json_field(&mut s, "stores_fingerprint", format!("\"{:#018x}\"", digest.stores_fingerprint));
    for (tag, r) in [("digest", digest), ("full_map", full)] {
        json_field(&mut s, &format!("{tag}_reconcile_bytes"), r.reconcile_bytes.to_string());
        json_field(&mut s, &format!("{tag}_reconcile_msgs"), r.reconcile_msgs.to_string());
        json_field(&mut s, &format!("{tag}_reconcile_rounds"), r.reconcile_rounds.to_string());
        json_field(&mut s, &format!("{tag}_violations"), r.violations.len().to_string());
    }
    json_field(
        &mut s,
        "digest_bytes_saved_pct",
        format!(
            "{:.1}",
            100.0 * (1.0 - digest.reconcile_bytes as f64 / full.reconcile_bytes.max(1) as f64)
        ),
    );
    s.push_str("  \"scale\": ");
    s.push_str(if crate::full_scale() { "\"full\"" } else { "\"quick\"" });
    s.push_str("\n}\n");
    s
}

/// Runs the sweep and head-to-head and writes `BENCH_chaos.json`.
pub fn run() {
    banner("chaos", "scenario sweep + anti-entropy head-to-head");

    let seeds = 0..scaled(6u64, 25u64);
    println!("sweeping {} generated scenarios ({SWEEP_HOSTS} hosts)...", seeds.end);
    let report = sweep(seeds, SWEEP_HOSTS, SWEEP_DURATION_MS, &RunConfig::default())
        .expect("sweep workload is well-formed");
    for (seed, r) in &report.outcomes {
        let mean = r.completeness.iter().sum::<f64>() / r.completeness.len().max(1) as f64;
        println!(
            "  seed {seed:>3}: {} violations, {:>9} reconcile bytes, mean completeness {mean:.1}%",
            r.violations.len(),
            r.reconcile_bytes
        );
        for v in &r.violations {
            println!("           {v}");
        }
    }
    println!("sweep failures: {}/{}", report.failures(), report.outcomes.len());

    let sc = churn_storm();
    println!("\nhead-to-head: {}", sc.describe().lines().next().unwrap_or(""));
    let digest = run_scenario(&sc, &head_to_head_config(true))
        .expect("head-to-head workload is well-formed");
    let full = run_scenario(&sc, &head_to_head_config(false))
        .expect("head-to-head workload is well-formed");
    println!(
        "  digest:   {:>9} bytes, {:>5} msgs, {:>4} rounds",
        digest.reconcile_bytes, digest.reconcile_msgs, digest.reconcile_rounds
    );
    println!(
        "  full-map: {:>9} bytes, {:>5} msgs, {:>4} rounds",
        full.reconcile_bytes, full.reconcile_msgs, full.reconcile_rounds
    );
    println!(
        "  stores converged equal: {} ({:#018x})",
        digest.stores_fingerprint == full.stores_fingerprint,
        digest.stores_fingerprint
    );

    let json = to_json(&report.outcomes, &digest, &full);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }

    assert_eq!(report.failures(), 0, "sweep produced oracle violations");
    assert!(digest.violations.is_empty() && full.violations.is_empty());
    assert_eq!(
        digest.stores_fingerprint, full.stores_fingerprint,
        "digest and full-map anti-entropy converged to different store sets"
    );
    assert!(
        digest.reconcile_bytes < full.reconcile_bytes,
        "digest anti-entropy spent no fewer bytes: {} vs {}",
        digest.reconcile_bytes,
        full.reconcile_bytes
    );
}
