//! Figures 9 & 10: true completeness and result latency versus clock-offset
//! scale, for syncless Mortar, timestamped Mortar, and the centralized
//! StreamBase-like baseline (Section 5.1).
//!
//! Paper setup: 439 peers over the Inet topology; clocks set per a
//! PlanetLab-observed offset distribution scaled 0–2 along the x-axis;
//! in-network sum with a 5-second window; StreamBase's BSort reorder buffer
//! configured to 5k tuples. Syncless averages 91% true completeness with a
//! flat ~6 s latency; timestamps degrade in both, latency by ~8x.

use super::common::{count_peers_spec, mean, stddev};
use crate::{banner, header, row, scaled};
use mortar_core::centralized::{CentralConfig, CentralNode};
use mortar_core::engine::{Engine, EngineConfig};
use mortar_core::metrics::{mean_report_latency_secs, true_completeness};
use mortar_core::peer::IndexingMode;
use mortar_net::{ClockModel, SimBuilder, Topology};

const SLIDE_US: u64 = 5_000_000;

/// One Mortar run; returns (true completeness %, latency s).
fn mortar_run(mode: IndexingMode, scale: f64, n: usize, secs: f64, seed: u64) -> (f64, f64) {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.peer.indexing = mode;
    cfg.clock_model = ClockModel::planetlab_like(scale);
    let mut eng = Engine::new(cfg).expect("valid config");
    eng.install(count_peers_spec("sum5", n, SLIDE_US)).expect("valid spec");
    eng.run_secs(secs);
    let results = eng.results(0);
    (true_completeness(results, SLIDE_US, 3), mean_report_latency_secs(results))
}

/// One centralized (StreamBase-like) run.
fn central_run(scale: f64, n: usize, secs: f64, seed: u64) -> (f64, f64) {
    let cfg = CentralConfig { slide_us: SLIDE_US, ..CentralConfig::default() };
    let topo = Topology::paper_inet(n, seed);
    let mut sim = SimBuilder::new(topo, seed)
        .clock_model(ClockModel::planetlab_like(scale))
        .build(move |id| CentralNode::new(id, cfg));
    sim.run_for_secs(secs);
    let now = sim.now();
    sim.app_mut(0).flush(now);
    let results = &sim.app(0).results;
    (true_completeness(results, SLIDE_US, 3), mean_report_latency_secs(results))
}

/// One system's sweep series: `(label, completeness, completeness stddev,
/// latency)`.
pub type SystemSeries = (&'static str, Vec<f64>, Vec<f64>, Vec<f64>);

/// Sweep results per system: `(label, completeness series, latency series)`.
pub fn sweep() -> (Vec<f64>, Vec<SystemSeries>) {
    let n = scaled(120, 439);
    let secs = scaled(150.0, 300.0);
    let runs = scaled(2, 5);
    let scales: Vec<f64> = vec![0.0, 0.5, 1.0, 1.5, 2.0];
    let mut out: Vec<SystemSeries> = Vec::new();
    for (label, which) in [("Syncless", 0usize), ("Timestamp", 1), ("StreamBase-like", 2)] {
        let mut comp = Vec::new();
        let mut comp_sd = Vec::new();
        let mut lat = Vec::new();
        for &s in &scales {
            let samples: Vec<(f64, f64)> = (0..runs)
                .map(|r| {
                    let seed = 40 + r as u64 * 17;
                    match which {
                        0 => mortar_run(IndexingMode::Syncless, s, n, secs, seed),
                        1 => mortar_run(IndexingMode::Timestamp, s, n, secs, seed),
                        _ => central_run(s, n, secs, seed),
                    }
                })
                .collect();
            let cs: Vec<f64> = samples.iter().map(|x| x.0).collect();
            let ls: Vec<f64> = samples.iter().map(|x| x.1).collect();
            comp.push(mean(&cs));
            comp_sd.push(stddev(&cs));
            lat.push(mean(&ls));
        }
        out.push((label, comp, comp_sd, lat));
    }
    (scales, out)
}

/// Prints Figure 9 (true completeness).
pub fn run_fig09() {
    banner("Figure 9", "true completeness vs. clock-offset scale (5 s window)");
    let (scales, systems) = sweep();
    header("true completeness (%)", &scales.iter().map(|s| format!("x{s:.1}")).collect::<Vec<_>>());
    for (label, comp, sd, _) in &systems {
        row(label, comp);
        row(&format!("{label} (σ)"), sd);
    }
    println!(
        "\nExpected shape (paper): syncless flat (~91%); timestamp and the\n\
         centralized processor degrade as offsets scale."
    );
}

/// Prints Figure 10 (result latency).
pub fn run_fig10() {
    banner("Figure 10", "result latency vs. clock-offset scale (5 s window)");
    let (scales, systems) = sweep();
    header("latency (s)", &scales.iter().map(|s| format!("x{s:.1}")).collect::<Vec<_>>());
    for (label, _, _, lat) in &systems {
        row(label, lat);
    }
    let sync1 = systems[0].3[2];
    let ts1 = systems[1].3[2];
    println!(
        "\nAt scale 1.0: timestamps {ts1:.1}s vs syncless {sync1:.1}s — a {:.1}x\n\
         improvement (paper reports ~8x). StreamBase-like latency is buffer-bound\n\
         and roughly flat.",
        ts1 / sync1.max(0.1)
    );
}
