use mortar_coords::VivaldiSystem;
use mortar_net::Topology;
use mortar_overlay::planner::{derive_sibling, percentile, plan_primary, root_latencies};
use mortar_overlay::tree::random_tree;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let hosts = 340;
    let n = 179;
    let topo = Topology::paper_inet(hosts, 170);
    let full = topo.latency_matrix_ms();
    let mut rng = SmallRng::seed_from_u64(170);
    let mut ids: Vec<usize> = (0..hosts).collect();
    ids.shuffle(&mut rng);
    let members: Vec<usize> = ids.into_iter().take(n).collect();
    let lat: Vec<Vec<f64>> =
        members.iter().map(|&a| members.iter().map(|&b| full[a][b]).collect()).collect();

    let mut viv = VivaldiSystem::new(n, 3, 171);
    viv.run(&lat, 30, 8);
    println!("vivaldi rel err after 30 rounds: {:.3}", viv.mean_relative_error(&lat));
    let vcoords: Vec<Vec<f64>> = viv.coords().into_iter().map(|c| c.0).collect();

    for (name, coords) in [("vivaldi", &vcoords), ("perfect(lat rows)", &lat)] {
        for bf in [4usize, 16] {
            let trials = 10;
            let (mut r, mut p, mut d) = (0.0, 0.0, 0.0);
            for _ in 0..trials {
                let t = random_tree(n, 0, bf, &mut rng);
                r += percentile(&root_latencies(&t, &lat), 0.9);
                let pt = plan_primary(coords, 0, bf, 30, &mut rng);
                p += percentile(&root_latencies(&pt, &lat), 0.9);
                let dt = derive_sibling(&pt, &mut rng);
                d += percentile(&root_latencies(&dt, &lat), 0.9);
            }
            println!(
                "{name} bf={bf}: random={:.0} planned={:.0} derived={:.0}",
                r / 10.0,
                p / 10.0,
                d / 10.0
            );
        }
    }
}
