//! Wi-Fi device-tracking substrate (Section 7.4).
//!
//! The paper's proof-of-concept uses the Jigsaw enterprise monitoring
//! system's 188 sniffers as authentic workload; the sniffers' captures are
//! replayed over ModelNet. Jigsaw traces are not available, so this crate
//! synthesizes the equivalent: an office-floor sniffer grid, a log-distance
//! path-loss RSSI model with shadowing, an L-shaped walking trajectory, and
//! the custom `trilat` operator that turns a top-k of signal strengths into
//! a coordinate estimate.
//!
//! The MSL query is the paper's three-liner:
//!
//! ```text
//! frames = select(wifi, key == <mac>);
//! loud = topk(frames, 3, rssi) window 1s;
//! position = trilat(loud);
//! ```

pub mod model;
pub mod scenario;
pub mod trilat;

pub use model::{PathLossModel, Sniffer};
pub use scenario::{sniffer_grid, WifiScenario, WifiScenarioConfig};
pub use trilat::{trilaterate, TrilatOp};
