//! The Figure 18 scenario: a user circling an office floor while
//! downloading, tracked by 188 sniffers.
//!
//! Generates per-sniffer replay traces (what each sniffer would have
//! captured under the path-loss model) for replay through Mortar peers, and
//! keeps the ground-truth trajectory for error measurement.

use crate::model::{PathLossModel, Sniffer};
use mortar_core::tuple::RawTuple;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Lays out `n` sniffers on a jittered grid over a `w × h` metre floor.
pub fn sniffer_grid(n: usize, w: f64, h: f64, seed: u64) -> Vec<Sniffer> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cols = (n as f64 * w / h).sqrt().ceil().max(1.0) as usize;
    let rows = n.div_ceil(cols);
    let mut out = Vec::with_capacity(n);
    'outer: for r in 0..rows {
        for c in 0..cols {
            if out.len() >= n {
                break 'outer;
            }
            let jx: f64 = rng.gen::<f64>() - 0.5;
            let jy: f64 = rng.gen::<f64>() - 0.5;
            out.push(Sniffer {
                x: (c as f64 + 0.5 + 0.4 * jx) * w / cols as f64,
                y: (r as f64 + 0.5 + 0.4 * jy) * h / rows as f64,
            });
        }
    }
    out
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct WifiScenarioConfig {
    /// Number of sniffers (the paper's deployment has 188).
    pub sniffers: usize,
    /// Floor width, metres.
    pub floor_w: f64,
    /// Floor height, metres.
    pub floor_h: f64,
    /// Tracked device's MAC key.
    pub mac: u64,
    /// Frames per second emitted by the tracked device (a file download).
    pub frames_per_sec: f64,
    /// Walking speed, m/s.
    pub speed: f64,
    /// Duration of the walk, seconds.
    pub duration_s: f64,
    /// Propagation model.
    pub model: PathLossModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WifiScenarioConfig {
    fn default() -> Self {
        Self {
            sniffers: 188,
            floor_w: 80.0,
            floor_h: 50.0,
            mac: 0xB16B00B5,
            frames_per_sec: 20.0,
            speed: 1.2,
            duration_s: 180.0,
            model: PathLossModel::default(),
            seed: 2008,
        }
    }
}

/// A generated scenario: sniffers, traces, and ground truth.
#[derive(Debug, Clone)]
pub struct WifiScenario {
    /// Sniffer positions (member index order).
    pub sniffers: Vec<Sniffer>,
    /// Per-sniffer replay traces: (µs offset, frame tuple). Frame tuples
    /// carry `[rssi, sniffer_x, sniffer_y]` and the device MAC as key.
    pub traces: Vec<Vec<(u64, RawTuple)>>,
    /// Ground truth: (µs offset, x, y).
    pub truth: Vec<(u64, f64, f64)>,
    /// The tracked MAC key.
    pub mac: u64,
}

impl WifiScenario {
    /// Generates the scenario.
    pub fn generate(cfg: &WifiScenarioConfig) -> Self {
        let sniffers = sniffer_grid(cfg.sniffers, cfg.floor_w, cfg.floor_h, cfg.seed);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xfee1);
        // L-shaped hallway loop: along the bottom edge, then up the right
        // edge — the paper's user circles the floor hallways.
        let m = 5.0; // Hallway margin from the walls.
        let waypoints = [
            (m, m),
            (cfg.floor_w - m, m),
            (cfg.floor_w - m, cfg.floor_h - m),
            (m, cfg.floor_h - m),
            (m, m),
        ];
        let mut legs = Vec::new();
        let mut total_len = 0.0;
        for w in waypoints.windows(2) {
            let len = (w[1].0 - w[0].0).hypot(w[1].1 - w[0].1);
            legs.push((w[0], w[1], len));
            total_len += len;
        }
        let pos_at = |dist: f64| -> (f64, f64) {
            let mut d = dist % total_len;
            for &(a, b, len) in &legs {
                if d <= len {
                    let t = d / len;
                    return (a.0 + (b.0 - a.0) * t, a.1 + (b.1 - a.1) * t);
                }
                d -= len;
            }
            waypoints[0]
        };
        let frame_gap_us = (1e6 / cfg.frames_per_sec) as u64;
        let mut traces: Vec<Vec<(u64, RawTuple)>> = vec![Vec::new(); sniffers.len()];
        let mut truth = Vec::new();
        let mut t_us = 0u64;
        let end = (cfg.duration_s * 1e6) as u64;
        while t_us < end {
            let (x, y) = pos_at(cfg.speed * t_us as f64 / 1e6);
            truth.push((t_us, x, y));
            for (i, s) in sniffers.iter().enumerate() {
                if let Some(rssi) = cfg.model.sample(s.dist(x, y), &mut rng) {
                    traces[i].push((t_us, RawTuple { key: cfg.mac, vals: vec![rssi, s.x, s.y] }));
                }
            }
            t_us += frame_gap_us;
        }
        Self { sniffers, traces, truth, mac: cfg.mac }
    }

    /// Ground-truth position at a µs offset (nearest sample).
    pub fn truth_at(&self, t_us: u64) -> (f64, f64) {
        match self.truth.binary_search_by_key(&t_us, |&(t, _, _)| t) {
            Ok(i) => (self.truth[i].1, self.truth[i].2),
            Err(i) => {
                let i = i.min(self.truth.len() - 1);
                (self.truth[i].1, self.truth[i].2)
            }
        }
    }

    /// Mean position error (metres) of a sequence of (µs, x, y) estimates.
    pub fn mean_error(&self, estimates: &[(u64, f64, f64)]) -> f64 {
        if estimates.is_empty() {
            return f64::NAN;
        }
        let sum: f64 = estimates
            .iter()
            .map(|&(t, x, y)| {
                let (tx, ty) = self.truth_at(t);
                (x - tx).hypot(y - ty)
            })
            .sum();
        sum / estimates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_floor() {
        let s = sniffer_grid(188, 80.0, 50.0, 1);
        assert_eq!(s.len(), 188);
        assert!(s.iter().all(|p| (0.0..=80.0).contains(&p.x) && (0.0..=50.0).contains(&p.y)));
        // Spread: corners of the floor should each have a sniffer within
        // one grid cell (~7 m).
        for corner in [(2.0, 2.0), (78.0, 48.0)] {
            let nearest =
                s.iter().map(|p| p.dist(corner.0, corner.1)).fold(f64::INFINITY, f64::min);
            assert!(nearest < 10.0, "corner {corner:?} uncovered ({nearest} m)");
        }
    }

    #[test]
    fn scenario_produces_audible_traces() {
        let cfg = WifiScenarioConfig { duration_s: 10.0, ..WifiScenarioConfig::default() };
        let sc = WifiScenario::generate(&cfg);
        let total: usize = sc.traces.iter().map(Vec::len).sum();
        assert!(total > 1000, "only {total} captured frames");
        // Nearby sniffers hear much more than far ones.
        let max = sc.traces.iter().map(Vec::len).max().unwrap();
        let min = sc.traces.iter().map(Vec::len).min().unwrap();
        assert!(max > min, "capture counts should vary with distance");
    }

    #[test]
    fn truth_interpolation_is_monotone_in_time() {
        let cfg = WifiScenarioConfig { duration_s: 30.0, ..WifiScenarioConfig::default() };
        let sc = WifiScenario::generate(&cfg);
        let (x0, y0) = sc.truth_at(0);
        assert!((x0 - 5.0).abs() < 1.0 && (y0 - 5.0).abs() < 1.0, "starts at first waypoint");
    }

    #[test]
    fn loudest_sniffers_localize_user() {
        // End-to-end sanity without the network: take the top-3 frames per
        // second and trilaterate; error should be a few metres.
        let cfg = WifiScenarioConfig { duration_s: 20.0, ..WifiScenarioConfig::default() };
        let sc = WifiScenario::generate(&cfg);
        let model = cfg.model;
        let mut estimates = Vec::new();
        for sec in 0..20u64 {
            let lo = sec * 1_000_000;
            let hi = lo + 1_000_000;
            let mut frames: Vec<(f64, f64, f64)> = Vec::new();
            for tr in &sc.traces {
                for &(t, ref tup) in tr {
                    if t >= lo && t < hi {
                        frames.push((tup.vals[0], tup.vals[1], tup.vals[2]));
                    }
                }
            }
            frames.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let anchors: Vec<(f64, f64, f64)> = frames
                .iter()
                .take(3)
                .map(|&(rssi, x, y)| (x, y, model.distance_for(rssi)))
                .collect();
            if let Some((x, y)) = crate::trilat::trilaterate(&anchors) {
                estimates.push((lo + 500_000, x, y));
            }
        }
        let err = sc.mean_error(&estimates);
        assert!(err < 12.0, "mean localization error {err} m");
    }
}
