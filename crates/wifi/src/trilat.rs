//! The custom trilateration operator.
//!
//! "A custom `trilat` operator takes the resulting topK stream and computes
//! a coordinate position based on simple trilateration, given the
//! coordinates of each sniffer" (Section 7.4). Registered as a Mortar
//! [`CustomOp`] and referenced by name from the MSL query's final stage.
//!
//! Frames carry `[rssi, sniffer_x, sniffer_y]`, so the top-k entries
//! already contain the anchors. Estimation uses RSSI-weighted circle
//! intersection with a weighted-centroid fallback — deliberately "simple";
//! the paper notes more advanced methods exist but would use the same
//! query.

use crate::model::PathLossModel;
use mortar_core::op::CustomOp;
use mortar_core::tuple::RawTuple;
use mortar_core::value::{AggState, TopKEntry};

/// Trilateration from (x, y, estimated distance) anchors.
///
/// Solves the linearized circle system for ≥3 anchors; for fewer, falls
/// back to an inverse-distance weighted centroid.
pub fn trilaterate(anchors: &[(f64, f64, f64)]) -> Option<(f64, f64)> {
    match anchors.len() {
        0 => None,
        1 => Some((anchors[0].0, anchors[0].1)),
        2 => {
            // Weighted point between the two anchors.
            let (x1, y1, d1) = anchors[0];
            let (x2, y2, d2) = anchors[1];
            let w1 = 1.0 / d1.max(0.1);
            let w2 = 1.0 / d2.max(0.1);
            Some(((x1 * w1 + x2 * w2) / (w1 + w2), (y1 * w1 + y2 * w2) / (w1 + w2)))
        }
        _ => {
            // Linearize against the last anchor: for each i<n,
            // 2(xn−xi)x + 2(yn−yi)y = (dᵢ²−dₙ²) + (xₙ²−xᵢ²) + (yₙ²−yᵢ²).
            let (xn, yn, dn) = anchors[anchors.len() - 1];
            let mut ata = [[0.0f64; 2]; 2];
            let mut atb = [0.0f64; 2];
            for &(xi, yi, di) in &anchors[..anchors.len() - 1] {
                let a0 = 2.0 * (xn - xi);
                let a1 = 2.0 * (yn - yi);
                let b = (di * di - dn * dn) + (xn * xn - xi * xi) + (yn * yn - yi * yi);
                ata[0][0] += a0 * a0;
                ata[0][1] += a0 * a1;
                ata[1][0] += a1 * a0;
                ata[1][1] += a1 * a1;
                atb[0] += a0 * b;
                atb[1] += a1 * b;
            }
            let det = ata[0][0] * ata[1][1] - ata[0][1] * ata[1][0];
            if det.abs() < 1e-9 {
                // Degenerate geometry: weighted centroid.
                let mut sx = 0.0;
                let mut sy = 0.0;
                let mut sw = 0.0;
                for &(x, y, d) in anchors {
                    let w = 1.0 / d.max(0.1);
                    sx += x * w;
                    sy += y * w;
                    sw += w;
                }
                return Some((sx / sw, sy / sw));
            }
            let x = (atb[0] * ata[1][1] - atb[1] * ata[0][1]) / det;
            let y = (ata[0][0] * atb[1] - ata[1][0] * atb[0]) / det;
            Some((x, y))
        }
    }
}

/// The Mortar custom operator wrapping [`trilaterate`].
///
/// Only `finalize` matters (it is a root post-operator); the lift/zero
/// methods exist to satisfy the operator API and are inert.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrilatOp {
    /// Propagation model used to invert RSSI into distance.
    pub model: PathLossModel,
}

impl TrilatOp {
    /// Creates the operator with the default path-loss model.
    pub fn new() -> Self {
        Self { model: PathLossModel::default() }
    }
}

impl CustomOp for TrilatOp {
    fn zero(&self) -> AggState {
        AggState::None
    }

    fn lift(&self, _state: &mut AggState, _source: u32, _tuple: &RawTuple) {}

    fn finalize(&self, state: &AggState) -> AggState {
        let AggState::TopK { entries, .. } = state else {
            return AggState::None;
        };
        let anchors: Vec<(f64, f64, f64)> = entries
            .iter()
            .filter_map(|e: &TopKEntry| {
                let rssi = *e.payload.first()?;
                let x = *e.payload.get(1)?;
                let y = *e.payload.get(2)?;
                Some((x, y, self.model.distance_for(rssi)))
            })
            .collect();
        match trilaterate(&anchors) {
            Some((x, y)) => AggState::Vector(vec![x, y]),
            None => AggState::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_three_circle_solution() {
        // Target at (3, 4); anchors with exact distances.
        let target = (3.0, 4.0);
        let anchors: Vec<(f64, f64, f64)> = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]
            .iter()
            .map(|&(x, y)| {
                let d = f64::hypot(x - target.0, y - target.1);
                (x, y, d)
            })
            .collect();
        let (x, y) = trilaterate(&anchors).unwrap();
        assert!((x - 3.0).abs() < 1e-6 && (y - 4.0).abs() < 1e-6, "got ({x},{y})");
    }

    #[test]
    fn single_anchor_returns_anchor() {
        assert_eq!(trilaterate(&[(5.0, 6.0, 2.0)]), Some((5.0, 6.0)));
        assert_eq!(trilaterate(&[]), None);
    }

    #[test]
    fn two_anchors_between() {
        let (x, y) = trilaterate(&[(0.0, 0.0, 1.0), (10.0, 0.0, 1.0)]).unwrap();
        assert!((x - 5.0).abs() < 1e-9 && y.abs() < 1e-9);
    }

    #[test]
    fn collinear_anchors_fall_back_gracefully() {
        let p = trilaterate(&[(0.0, 0.0, 5.0), (5.0, 0.0, 2.0), (10.0, 0.0, 5.0)]);
        let (x, y) = p.unwrap();
        assert!(x.is_finite() && y.is_finite());
        assert!((0.0..=10.0).contains(&x));
        assert_eq!(y, 0.0);
    }

    #[test]
    fn operator_finalizes_topk_to_coordinate() {
        let model = crate::model::PathLossModel::default();
        let op = TrilatOp::new();
        let target = (20.0, 15.0);
        let mk = |x: f64, y: f64| {
            let d = f64::hypot(x - target.0, y - target.1);
            TopKEntry {
                score: model.mean_rssi(d),
                source: 0,
                payload: vec![model.mean_rssi(d), x, y],
            }
        };
        let state =
            AggState::TopK { k: 3, entries: vec![mk(18.0, 12.0), mk(25.0, 15.0), mk(20.0, 20.0)] };
        match op.finalize(&state) {
            AggState::Vector(v) => {
                let err = (v[0] - target.0).hypot(v[1] - target.1);
                assert!(err < 2.0, "estimate {v:?} off by {err} m");
            }
            other => panic!("expected a coordinate, got {other:?}"),
        }
    }

    #[test]
    fn operator_rejects_non_topk_states() {
        let op = TrilatOp::new();
        assert_eq!(op.finalize(&AggState::Sum(1.0)), AggState::None);
    }
}
