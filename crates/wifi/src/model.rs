//! RSSI propagation: the log-distance path-loss model with log-normal
//! shadowing, the standard indoor approximation.
//!
//! `RSSI(d) = P₀ − 10·n·log₁₀(d/d₀) + X`, with `P₀` the received power at
//! the reference distance (1 m), `n` the path-loss exponent (≈3 indoors),
//! and `X` zero-mean Gaussian shadowing.

use rand::Rng;

/// A Wi-Fi sniffer with a known position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sniffer {
    /// x coordinate, metres.
    pub x: f64,
    /// y coordinate, metres.
    pub y: f64,
}

impl Sniffer {
    /// Euclidean distance to a point.
    pub fn dist(&self, x: f64, y: f64) -> f64 {
        ((self.x - x).powi(2) + (self.y - y).powi(2)).sqrt()
    }
}

/// Log-distance path loss parameters.
#[derive(Debug, Clone, Copy)]
pub struct PathLossModel {
    /// RSSI at the 1 m reference distance, dBm.
    pub p0_dbm: f64,
    /// Path-loss exponent.
    pub exponent: f64,
    /// Shadowing standard deviation, dB.
    pub sigma_db: f64,
    /// Receiver sensitivity: frames below this RSSI are not captured.
    pub sensitivity_dbm: f64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        Self { p0_dbm: -40.0, exponent: 3.0, sigma_db: 4.0, sensitivity_dbm: -90.0 }
    }
}

impl PathLossModel {
    /// Mean RSSI at distance `d` metres (no shadowing).
    pub fn mean_rssi(&self, d: f64) -> f64 {
        let d = d.max(0.1);
        self.p0_dbm - 10.0 * self.exponent * d.log10()
    }

    /// A noisy RSSI sample; `None` when below the capture sensitivity.
    pub fn sample<R: Rng + ?Sized>(&self, d: f64, rng: &mut R) -> Option<f64> {
        // Box–Muller for a standard normal.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let rssi = self.mean_rssi(d) + self.sigma_db * z;
        (rssi >= self.sensitivity_dbm).then_some(rssi)
    }

    /// Inverts the mean model: estimated distance for an observed RSSI.
    pub fn distance_for(&self, rssi_dbm: f64) -> f64 {
        10f64.powf((self.p0_dbm - rssi_dbm) / (10.0 * self.exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rssi_decreases_with_distance() {
        let m = PathLossModel::default();
        assert!(m.mean_rssi(1.0) > m.mean_rssi(10.0));
        assert!(m.mean_rssi(10.0) > m.mean_rssi(50.0));
        assert!((m.mean_rssi(1.0) - m.p0_dbm).abs() < 1e-9);
    }

    #[test]
    fn inversion_round_trips() {
        let m = PathLossModel::default();
        for d in [1.0, 5.0, 20.0, 60.0] {
            let r = m.mean_rssi(d);
            assert!((m.distance_for(r) - d).abs() < 1e-6, "d = {d}");
        }
    }

    #[test]
    fn sensitivity_filters_far_frames() {
        let m = PathLossModel { sigma_db: 0.0, ..PathLossModel::default() };
        let mut rng = SmallRng::seed_from_u64(1);
        // At -40 - 30·log10(d): d = 1000 m → -130 dBm, below -90.
        assert!(m.sample(1000.0, &mut rng).is_none());
        assert!(m.sample(5.0, &mut rng).is_some());
    }

    #[test]
    fn shadowing_has_expected_spread() {
        let m = PathLossModel { sensitivity_dbm: -500.0, ..PathLossModel::default() };
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..2000).filter_map(|_| m.sample(10.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - m.mean_rssi(10.0)).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.5, "σ {}", var.sqrt());
    }

    #[test]
    fn sniffer_distance() {
        let s = Sniffer { x: 3.0, y: 4.0 };
        assert!((s.dist(0.0, 0.0) - 5.0).abs() < 1e-12);
    }
}
