//! A minimal, deterministic, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment vendors no external crates, so this workspace-local
//! shim provides exactly the surface the Mortar workspace uses: `SmallRng`
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`), slice shuffling, and a uniform
//! distribution. Generated streams are deterministic per seed (SplitMix64),
//! which is all the discrete-event simulations require — statistical
//! equivalence with upstream `rand` streams is *not* promised.

use std::ops::{Bound, RangeBounds};

/// Low-level entropy source: a stream of 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let lo_w = lo as $wide;
                let hi_w = hi as $wide;
                assert!(
                    if inclusive { lo_w <= hi_w } else { lo_w < hi_w },
                    "gen_range: empty range"
                );
                // Range width as a u128 so inclusive full-width ranges
                // (e.g. `0..=u64::MAX`) cannot overflow.
                let span = (hi_w - lo_w) as u128 + inclusive as u128;
                let draw = rng.next_u64();
                let off = if span == 0 || span > u64::MAX as u128 {
                    draw
                } else {
                    draw % span as u64
                };
                (lo_w + off as $wide) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(
    u8 => i128, u16 => i128, u32 => i128, u64 => i128, usize => i128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + u * (hi - lo)
            }
        }
    )+};
}

impl_sample_uniform_float!(f32, f64);

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard01 {
    /// Derives a sample from one word of entropy.
    fn from_word(word: u64) -> Self;
}

impl Standard01 for f64 {
    fn from_word(word: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (word >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard01 for f32 {
    fn from_word(word: u64) -> Self {
        (word >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard01 for bool {
    fn from_word(word: u64) -> Self {
        word & 1 == 1
    }
}

impl Standard01 for u64 {
    fn from_word(word: u64) -> Self {
        word
    }
}

impl Standard01 for u32 {
    fn from_word(word: u64) -> Self {
        (word >> 32) as u32
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard01>(&mut self) -> T {
        T::from_word(self.next_u64())
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(_) => panic!("gen_range: excluded start bound unsupported"),
            Bound::Unbounded => panic!("gen_range: unbounded start unsupported"),
        };
        match range.end_bound() {
            Bound::Included(&hi) => T::sample_range(lo, hi, true, self),
            Bound::Excluded(&hi) => T::sample_range(lo, hi, false, self),
            Bound::Unbounded => panic!("gen_range: unbounded end unsupported"),
        }
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so nearby seeds diverge immediately.
            let mut rng = SmallRng { state: state.wrapping_add(0x9E3779B97F4A7C15) };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Distribution types (`rand::distributions` in upstream 0.8).
pub mod distributions {
    use super::{Rng, SampleUniform};

    /// A type that can produce samples of `T` given a generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<X> {
        lo: X,
        hi: X,
    }

    impl<X: SampleUniform> Uniform<X> {
        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: X, hi: X) -> Self {
            Self { lo, hi }
        }

        /// Uniform over `[lo, hi)`.
        pub fn new(lo: X, hi: X) -> Self {
            Self { lo, hi }
        }
    }

    impl<X: SampleUniform> Distribution<X> for Uniform<X> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> X {
            X::sample_range(self.lo, self.hi, true, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(3..9);
            assert!((3..9).contains(&a));
            let b = rng.gen_range(0..=5u64);
            assert!(b <= 5);
            let c = rng.gen_range(-4.0..4.0f64);
            assert!((-4.0..4.0).contains(&c));
            let d = rng.gen_range(-10..-2i64);
            assert!((-10..-2).contains(&d));
        }
    }

    #[test]
    fn full_width_range_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..64 {
            let _ = rng.gen_range(0u64..u64::MAX);
            let _ = rng.gen_range(0u64..=u64::MAX);
            let _ = rng.gen_range(i64::MIN..=i64::MAX);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "32 elements staying in place is astronomically unlikely");
    }

    #[test]
    fn uniform_distribution_samples_interval() {
        use super::distributions::{Distribution, Uniform};
        let mut rng = SmallRng::seed_from_u64(6);
        let d = Uniform::new_inclusive(-0.5, 0.5);
        for _ in 0..1_000 {
            let x: f64 = d.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&x));
        }
    }
}
