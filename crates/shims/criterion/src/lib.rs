//! A minimal, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment vendors no external crates; this shim provides the
//! surface `mortar-bench`'s micro benchmarks use — [`Criterion`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing uses wall-clock
//! medians over a fixed sample count; there is no statistical analysis,
//! warm-up calibration, or HTML reporting.

use std::time::Instant;

/// Controls batch sizing for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always materializes one input per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation upstream; one-at-a-time here.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Runs closures and reports wall-clock timings.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed_ns: 0.0, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples_ns.push(b.elapsed_ns / b.iters as f64);
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = samples_ns.get(samples_ns.len() / 2).copied().unwrap_or(f64::NAN);
        println!("{id:<40} median {median:>12.1} ns/iter ({} samples)", samples_ns.len());
        self
    }
}

/// One benchmark's measurement context.
pub struct Bencher {
    elapsed_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = 16u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
        self.iters += iters;
    }

    /// Times `routine` over inputs freshly produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let iters = 16u64;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos() as f64;
        }
        self.iters += iters;
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closures() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        assert!(runs >= 3, "bench closure never ran");
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut b = Bencher { elapsed_ns: 0.0, iters: 0 };
        b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }
}
