//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<Value = T>>);

trait ErasedStrategy {
    type Value;
    fn erased_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> ErasedStrategy for S {
    type Value = S::Value;
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }
}

/// Strategies behind references generate what their referent generates.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy yielding a fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// A union over `options` (must be nonempty).
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let hi = self.end as i128;
                let span = (hi - lo) as u128;
                let draw = rng.next_u64();
                let off = if span > u64::MAX as u128 {
                    draw
                } else {
                    draw % span as u64
                };
                (lo + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let draw = rng.next_u64();
                let off = if span > u64::MAX as u128 {
                    draw
                } else {
                    draw % span as u64
                };
                (lo + off as i128) as $t
            }
        }
    )+};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )+};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategies from a restricted regex subset: a single character
/// class with a repetition count, `[class]{lo,hi}`. Classes support ranges
/// (`a-z`), escapes (`\n`, `\t`, `\\`, `\]`), and literal characters. This
/// covers the patterns used by the workspace's fuzz-style tests.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = lo + rng.index(hi - lo + 1);
        (0..len).map(|_| chars[rng.index(chars.len())]).collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = find_unescaped_close(rest)?;
    let class = &rest[..close];
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n: usize = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    if hi < lo {
        return None;
    }
    let chars = expand_class(class)?;
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

fn find_unescaped_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn expand_class(class: &str) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let items: Vec<char> = class.chars().collect();
    let mut i = 0;
    let resolve = |i: &mut usize| -> Option<char> {
        let c = items.get(*i).copied()?;
        if c == '\\' {
            *i += 1;
            let e = items.get(*i).copied()?;
            *i += 1;
            Some(match e {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            })
        } else {
            *i += 1;
            Some(c)
        }
    };
    while i < items.len() {
        let c = resolve(&mut i)?;
        if items.get(i) == Some(&'-') && i + 1 < items.len() {
            i += 1; // Consume '-'.
            let end = resolve(&mut i)?;
            if (end as u32) < (c as u32) {
                return None;
            }
            for u in c as u32..=end as u32 {
                out.push(char::from_u32(u)?);
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_expansion_handles_ranges_and_escapes() {
        let (chars, lo, hi) = parse_class_pattern("[a-c\\n]{0,5}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '\n']);
        assert_eq!((lo, hi), (0, 5));
        let (chars, lo, hi) = parse_class_pattern("[xy]{3}").unwrap();
        assert_eq!(chars, vec!['x', 'y']);
        assert_eq!((lo, hi), (3, 3));
    }

    #[test]
    fn printable_ascii_class() {
        let (chars, ..) = parse_class_pattern("[ -~\\n]{0,200}").unwrap();
        assert_eq!(chars.len(), 96); // 95 printable ASCII + newline.
    }

    #[test]
    fn bad_patterns_rejected() {
        assert!(parse_class_pattern("abc").is_none());
        assert!(parse_class_pattern("[z-a]{1,2}").is_none());
        assert!(parse_class_pattern("[a]{4,2}").is_none());
    }
}
