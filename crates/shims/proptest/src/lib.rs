//! A minimal, dependency-free subset of the `proptest` API.
//!
//! The build environment vendors no external crates, so this workspace-local
//! shim implements the surface the Mortar test suites use: the [`proptest!`]
//! macro with `proptest_config`, range/tuple/`Just`/`prop_oneof!`/vec/string
//! strategies, `prop_map`, and the `prop_assert*` macros. Cases are generated
//! from a deterministic per-test RNG; failing inputs are reported via the
//! panic message. Shrinking is intentionally not implemented — failures
//! report the raw case, which the deterministic seeding makes reproducible.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "proptest::collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...) {}`
/// item expands to a test that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($s),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate() {
        let mut rng = TestRng::deterministic("smoke");
        let s = (0i64..10, 1u32..5).prop_map(|(a, b)| (a, a + b as i64));
        for _ in 0..256 {
            let (a, b) = s.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!(b > a && b < a + 5);
        }
    }

    #[test]
    fn string_class_strategy_parses() {
        let mut rng = TestRng::deterministic("string");
        let s = "[ -~\\n]{0,20}";
        for _ in 0..256 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.len() <= 20);
            assert!(v.chars().all(|c| c == '\n' || (' '..='~').contains(&c)), "{v:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(
            xs in crate::collection::vec(0u8..6, 0..14),
            flag in crate::bool::ANY,
            word in prop_oneof![Just("a".to_string()), Just("b".to_string())],
        ) {
            prop_assert!(xs.iter().all(|&x| x < 6));
            prop_assert!(word == "a" || word == "b");
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(word.len(), 0);
        }
    }
}
