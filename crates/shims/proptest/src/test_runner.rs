//! Test-runner support types: configuration, case errors, and the
//! deterministic RNG behind every strategy.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property within one generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator driving all strategies (SplitMix64, seeded from
/// the test name so every test owns an independent reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// Next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        (self.next_u64() % n as u64) as usize
    }
}
