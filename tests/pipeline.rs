//! Multi-stage pipeline integration: Section 2.2 composition through the
//! typed session API — a fleet-wide `sum` feeding a root-local `avg`
//! across two subscription-wired queries, plus the incremental
//! [`Mortar::subscribe`] contract.

use mortar::prelude::*;

fn session(n: usize, seed: u64) -> Mortar {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    Mortar::new(cfg).expect("valid config")
}

#[test]
fn two_stage_sum_then_avg_pipeline() {
    let n = 32;
    let mut mortar = session(n, 11);
    let handles = mortar
        .install_pipeline(
            Pipeline::new()
                .stage(
                    stage("up")
                        .members(0..n as NodeId)
                        .periodic_secs(1.0, 1.0)
                        .sum(0)
                        .every_secs(1.0),
                )
                .then(stage("smooth").avg(0).every_secs(5.0)),
        )
        .expect("valid two-stage pipeline");
    assert_eq!(handles.len(), 2);
    let (up, smooth) = (&handles[0], &handles[1]);
    assert_eq!(smooth.root(), up.root(), "downstream defaults to the upstream root");
    assert_eq!(smooth.member_count(), 1);

    mortar.run_secs(60.0);

    // The upstream behaves exactly like a standalone query...
    assert_eq!(mortar.active_count(up), n);
    let up_completeness = mortar.completeness(up, 10);
    assert!(up_completeness > 90.0, "upstream completeness {up_completeness}%");

    // ...and the downstream root reports complete windows too: every 5 s
    // window of the single-member avg stage is counted.
    let down_completeness = mortar.completeness(smooth, 2);
    assert!(down_completeness > 90.0, "downstream steady-state completeness {down_completeness}%");

    // The smoothed values average windowed sums of "1" per peer: in steady
    // state they approach n and may never exceed it.
    let smooth_vals: Vec<f64> = mortar.results(smooth).iter().filter_map(|r| r.scalar).collect();
    assert!(!smooth_vals.is_empty(), "downstream produced no results");
    assert!(smooth_vals.iter().all(|&v| v <= n as f64 + 1e-9), "{smooth_vals:?}");
    let best = smooth_vals.iter().copied().fold(0.0f64, f64::max);
    assert!(best > n as f64 * 0.9, "steady-state smoothed sum too low: {best}");
}

#[test]
fn subscribe_never_redelivers_across_drains() {
    let n = 16;
    let mut mortar = session(n, 13);
    let handles = mortar
        .install_pipeline(
            Pipeline::new()
                .stage(
                    stage("up")
                        .members(0..n as NodeId)
                        .periodic_secs(1.0, 1.0)
                        .sum(0)
                        .every_secs(1.0),
                )
                .then(stage("smooth").avg(0).every_secs(5.0)),
        )
        .expect("valid pipeline");
    let smooth = &handles[1];

    // Drain in uneven slices while the system keeps running; the drains
    // must exactly partition the full result log — nothing re-delivered,
    // nothing lost.
    let mut drained: Vec<ResultSig> = Vec::new();
    for secs in [3.0, 11.0, 0.0, 20.0, 7.0] {
        mortar.run_secs(secs);
        let batch = mortar.subscribe(smooth);
        let fresh: Vec<ResultSig> = batch.iter().map(sig).collect();
        for s in &fresh {
            assert!(!drained.contains(s), "record re-delivered: {s:?}");
        }
        drained.extend(fresh);
    }
    drained.extend(mortar.subscribe(smooth).iter().map(sig));
    let all: Vec<ResultSig> = mortar.results(smooth).iter().map(sig).collect();
    assert!(!all.is_empty(), "no downstream results");
    assert_eq!(drained, all, "drains must partition the result log in order");
}

/// A result's identity for re-delivery checks: window interval plus the
/// root-local emission instant (unique per record of one query).
type ResultSig = (i64, i64, i64);

fn sig(r: &mortar::stream::metrics::ResultRecord) -> ResultSig {
    (r.tb, r.te, r.emit_local_us)
}

#[test]
fn msl_pipeline_matches_api_pipeline() {
    let n = 16;
    // The same two-stage dataflow, once compiled from MSL and once built
    // fluently, over twin sessions with the same seed.
    let mut a = session(n, 17);
    let program = compile_pipeline(
        "stream sensors(value);\n\
         up = sum(sensors, value) every 1s;\n\
         smooth = avg(up, f0) every 5s;",
    )
    .expect("compiles");
    let ha = a
        .install_pipeline(program.to_pipeline(
            0,
            (0..n as NodeId).collect(),
            SensorSpec::Periodic { period_us: 1_000_000, value: 1.0 },
        ))
        .expect("installs");

    let mut b = session(n, 17);
    let hb = b
        .install_pipeline(
            Pipeline::new()
                .stage(
                    stage("up")
                        .members(0..n as NodeId)
                        .periodic_secs(1.0, 1.0)
                        .sum(0)
                        .every_secs(1.0),
                )
                .then(stage("smooth").avg(0).every_secs(5.0)),
        )
        .expect("installs");

    a.run_secs(40.0);
    b.run_secs(40.0);
    let va: Vec<(i64, Option<f64>)> = a.results(&ha[1]).iter().map(|r| (r.tb, r.scalar)).collect();
    let vb: Vec<(i64, Option<f64>)> = b.results(&hb[1]).iter().map(|r| (r.tb, r.scalar)).collect();
    assert!(!va.is_empty());
    assert_eq!(va, vb, "MSL-compiled and fluent pipelines must agree exactly");
}
