//! Cross-crate integration: the typed session API (and the MSL front end
//! compiling into it) → planned overlay → simulated federation → handles
//! draining root results.

use mortar::prelude::*;

fn session(n: usize, seed: u64) -> Mortar {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    Mortar::new(cfg).expect("valid config")
}

#[test]
fn fluent_sum_query_end_to_end() {
    let n = 64;
    let mut cfg = EngineConfig::paper(n, 1);
    cfg.plan_on_true_latency = true;
    cfg.planner.branching_factor = 8;
    let mut mortar = Mortar::new(cfg).expect("valid config");
    let up = mortar
        .query("up")
        .fields(["value"])
        .members(0..n as NodeId)
        .periodic_secs(1.0, 1.0)
        .sum("value")
        .every_secs(1.0)
        .install()
        .expect("valid query");
    mortar.run_secs(45.0);
    assert_eq!(mortar.active_count(&up), n);
    let completeness = mortar.completeness(&up, 10);
    assert!(completeness > 93.0, "steady-state completeness {completeness}%");
    // The sum of "1"s from every live peer approaches n.
    let best = mortar.results(&up).iter().filter_map(|r| r.scalar).fold(0.0f64, f64::max);
    assert!((best - n as f64).abs() < 1e-9, "best window sum {best}");
}

#[test]
fn msl_definitions_compile_into_the_builder() {
    let n = 24;
    let mut mortar = session(n, 3);
    let mean_def = compile("stream s(v);\nmean_v = avg(s, v) every 1s;").expect("compiles");
    let max_def = compile("stream s(v);\nmax_v = max(s, v) every 1s;").expect("compiles");
    let mean = mortar
        .install(mean_def.stage().members(0..n as NodeId).periodic_secs(1.0, 1.0))
        .expect("installs");
    let max = mortar
        .install(max_def.stage().members(0..n as NodeId).periodic_secs(1.0, 1.0))
        .expect("installs");
    mortar.run_secs(30.0);
    let avg_vals: Vec<f64> = mortar.results(&mean).iter().filter_map(|r| r.scalar).collect();
    let max_vals: Vec<f64> = mortar.results(&max).iter().filter_map(|r| r.scalar).collect();
    assert!(!avg_vals.is_empty() && !max_vals.is_empty());
    // Constant streams of 1.0: every average and max must be exactly 1.
    assert!(avg_vals.iter().all(|&v| (v - 1.0).abs() < 1e-9), "{avg_vals:?}");
    assert!(max_vals.iter().all(|&v| (v - 1.0).abs() < 1e-9));
}

#[test]
fn two_queries_share_heartbeats() {
    let n = 32;
    let mut mortar = session(n, 5);
    mortar
        .query("q1")
        .members(0..n as NodeId)
        .periodic_secs(1.0, 1.0)
        .sum(0)
        .every_secs(1.0)
        .install()
        .expect("installs");
    mortar.run_secs(8.0);
    let one = mortar.engine().mean_heartbeat_children();
    mortar
        .query("q2")
        .members(0..n as NodeId)
        .periodic_secs(1.0, 1.0)
        .count()
        .every_secs(1.0)
        .install()
        .expect("installs");
    mortar.run_secs(8.0);
    let two = mortar.engine().mean_heartbeat_children();
    // Figure 13's claim: overhead grows sub-linearly because primary trees
    // repeat across queries over the same coordinate set.
    assert!(two < one * 2.0, "children grew linearly: {one} → {two}");
    assert!(two >= one * 0.9, "children should not shrink: {one} → {two}");
}

#[test]
fn time_division_never_overcounts() {
    // The central invariant versus SDIMS (Figure 16): whatever failures
    // occur, a window's participants can never exceed the member count.
    let n = 48;
    let mut mortar = session(n, 7);
    let q = mortar
        .query("q")
        .members(0..n as NodeId)
        .periodic_secs(1.0, 1.0)
        .sum(0)
        .every_secs(1.0)
        .install()
        .expect("installs");
    mortar.run_secs(20.0);
    let down = mortar.disconnect_random(0.3, q.root());
    mortar.run_secs(20.0);
    mortar.reconnect(&down);
    mortar.run_secs(20.0);
    let by_index = metrics::participants_by_index(&mortar.results(&q));
    let total: u64 = by_index.values().map(|&v| v as u64).sum();
    assert!(
        total <= (by_index.len() * n) as u64,
        "global over-count: {total} over {} windows of {n} peers",
        by_index.len()
    );
    for (idx, participants) in by_index {
        // Adjacent-window dispersion allows small local excess; systematic
        // SDIMS-style over-counting (120–180%) must be impossible.
        assert!(
            f64::from(participants) <= n as f64 * 1.25,
            "window {idx} over-counted: {participants} ≫ {n}"
        );
    }
}

#[test]
fn bad_queries_never_reach_the_fleet() {
    let n = 16;
    let mut mortar = session(n, 9);
    // Root outside the member list.
    let err = mortar
        .query("broken")
        .members(0..4)
        .root(12)
        .periodic_secs(1.0, 1.0)
        .sum(0)
        .install()
        .unwrap_err();
    assert_eq!(err, MortarError::RootNotMember { query: "broken".into(), root: 12 });
    // Member outside the topology.
    let err = mortar
        .query("broken")
        .members([0, 1, 200])
        .periodic_secs(1.0, 1.0)
        .sum(0)
        .install()
        .unwrap_err();
    assert!(matches!(err, MortarError::MemberOutOfRange { peer: 200, .. }));
    mortar.run_secs(5.0);
    assert_eq!(mortar.engine().installed_count("broken"), 0);
}
