//! Cross-crate integration: MSL source → compiled plan → planned overlay →
//! simulated federation → root results.

use mortar::prelude::*;

fn fleet_spec(n: usize, src: &str) -> QuerySpec {
    let def = compile(src).expect("program compiles");
    def.to_spec(
        0,
        (0..n as NodeId).collect(),
        SensorSpec::Periodic { period_us: 1_000_000, value: 1.0 },
    )
}

#[test]
fn msl_sum_query_end_to_end() {
    let n = 64;
    let mut cfg = EngineConfig::paper(n, 1);
    cfg.plan_on_true_latency = true;
    cfg.planner.branching_factor = 8;
    let mut eng = Engine::new(cfg);
    let spec = fleet_spec(n, "stream sensors(value);\nup = sum(sensors, value) every 1s;");
    let trees = eng.install(spec);
    assert_eq!(trees.width(), 4);
    eng.run_secs(45.0);
    assert_eq!(eng.active_count("up"), n);
    let results = eng.results(0);
    let completeness = metrics::mean_completeness(results, n, 10);
    assert!(completeness > 93.0, "steady-state completeness {completeness}%");
    // The sum of "1"s from every live peer approaches n.
    let best = results.iter().filter_map(|r| r.scalar).fold(0.0f64, f64::max);
    assert!((best - n as f64).abs() < 1e-9, "best window sum {best}");
}

#[test]
fn avg_and_max_agree_with_constant_streams() {
    let n = 24;
    let mut cfg = EngineConfig::paper(n, 3);
    cfg.plan_on_true_latency = true;
    let mut eng = Engine::new(cfg);
    let avg = fleet_spec(n, "stream s(v);\nmean_v = avg(s, v) every 1s;");
    let max = fleet_spec(n, "stream s(v);\nmax_v = max(s, v) every 1s;");
    eng.install(avg);
    eng.install(max);
    eng.run_secs(30.0);
    let results = eng.results(0);
    let avg_vals: Vec<f64> =
        results.iter().filter(|r| r.query == "mean_v").filter_map(|r| r.scalar).collect();
    let max_vals: Vec<f64> =
        results.iter().filter(|r| r.query == "max_v").filter_map(|r| r.scalar).collect();
    assert!(!avg_vals.is_empty() && !max_vals.is_empty());
    // Constant streams of 1.0: every average and max must be exactly 1.
    assert!(avg_vals.iter().all(|&v| (v - 1.0).abs() < 1e-9), "{avg_vals:?}");
    assert!(max_vals.iter().all(|&v| (v - 1.0).abs() < 1e-9));
}

#[test]
fn two_queries_share_heartbeats() {
    let n = 32;
    let mut cfg = EngineConfig::paper(n, 5);
    cfg.plan_on_true_latency = true;
    let mut eng = Engine::new(cfg);
    eng.install(fleet_spec(n, "stream s(v);\nq1 = sum(s, v) every 1s;"));
    eng.run_secs(8.0);
    let one = eng.mean_heartbeat_children();
    eng.install(fleet_spec(n, "stream s(v);\nq2 = count(s) every 1s;"));
    eng.run_secs(8.0);
    let two = eng.mean_heartbeat_children();
    // Figure 13's claim: overhead grows sub-linearly because primary trees
    // repeat across queries over the same coordinate set.
    assert!(two < one * 2.0, "children grew linearly: {one} → {two}");
    assert!(two >= one * 0.9, "children should not shrink: {one} → {two}");
}

#[test]
fn time_division_never_overcounts() {
    // The central invariant versus SDIMS (Figure 16): whatever failures
    // occur, a window's participants can never exceed the member count.
    let n = 48;
    let mut cfg = EngineConfig::paper(n, 7);
    cfg.plan_on_true_latency = true;
    let mut eng = Engine::new(cfg);
    eng.install(fleet_spec(n, "stream s(v);\nq = sum(s, v) every 1s;"));
    eng.run_secs(20.0);
    let down = eng.disconnect_random(0.3, 0);
    eng.run_secs(20.0);
    eng.reconnect(&down);
    eng.run_secs(20.0);
    let by_index = metrics::participants_by_index(eng.results(0));
    let total: u64 = by_index.values().map(|&v| v as u64).sum();
    assert!(
        total <= (by_index.len() * n) as u64,
        "global over-count: {total} over {} windows of {n} peers",
        by_index.len()
    );
    for (idx, participants) in by_index {
        // Adjacent-window dispersion allows small local excess; systematic
        // SDIMS-style over-counting (120–180%) must be impossible.
        assert!(
            f64::from(participants) <= n as f64 * 1.25,
            "window {idx} over-counted: {participants} ≫ {n}"
        );
    }
}
