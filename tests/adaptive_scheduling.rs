//! Adaptive tick arming and liveness-transition piggybacking.
//!
//! `adaptive_ticks` replaces the fixed `tick_us` wake grid with arming at
//! `min(next due instant, next heartbeat, earliest envelope deadline)`;
//! arrivals that move a due instant earlier pull the armed timer forward.
//! `liveness_reschedule` points linked queries' due entries at *now* when
//! a neighbour dies or returns, so failover does not wait for the next
//! natural due instant. Both default off (the fixed grid is the parity
//! baseline); these tests pin what turning them on buys and preserves.

use mortar::prelude::*;

fn session(
    n: usize,
    seed: u64,
    cadence_secs: f64,
    tune: impl FnOnce(&mut PeerConfig),
) -> (Mortar, QueryHandle) {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    tune(&mut cfg.peer);
    let mut mortar = Mortar::new(cfg).expect("valid config");
    let q = mortar
        .query("agg")
        .members(0..n as NodeId)
        .periodic_secs(cadence_secs, cadence_secs)
        .sum(0)
        .every_secs(cadence_secs)
        .install()
        .expect("valid query");
    (mortar, q)
}

fn total_ticks(mortar: &Mortar) -> u64 {
    mortar.engine().sim.apps().map(|p| p.stats.ticks).sum()
}

#[test]
fn adaptive_ticks_cut_wakeups_without_losing_results() {
    // A mostly idle fleet (4 s cadence against a 200 ms grid) is where
    // due-instant arming pays: the grid burns 5 wakes/s/peer regardless.
    let n = 64;
    let (mut grid, gq) = session(n, 55, 4.0, |_| {});
    grid.run_secs(40.0);
    let (mut adaptive, aq) = session(n, 55, 4.0, |p| p.adaptive_ticks = true);
    adaptive.run_secs(40.0);

    let grid_c = grid.completeness(&gq, 3);
    let adaptive_c = adaptive.completeness(&aq, 3);
    assert!(grid_c > 90.0, "grid baseline unhealthy: {grid_c}%");
    assert!(
        adaptive_c > grid_c - 2.0,
        "adaptive arming lost completeness: {adaptive_c}% vs {grid_c}%"
    );
    assert!(!adaptive.results(&aq).is_empty());

    // The whole point: waking at due instants instead of every `tick_us`
    // must collapse the tick count (4 s cadence + 2 s heartbeats vs a
    // 200 ms grid leaves at least a 2× margin even with install churn
    // and one wake per distinct eviction deadline).
    let (gt, at) = (total_ticks(&grid), total_ticks(&adaptive));
    assert!(at * 2 < gt, "adaptive ticks did not pay: {at} vs {gt} grid ticks");

    // Arrivals pulled the armed timer earlier at least somewhere (e.g.
    // the install wave scheduling the first emissions).
    let rearms: u64 = adaptive.engine().sim.apps().map(|p| p.stats.timer_rearms).sum();
    assert!(rearms > 0, "no arrival ever pulled the timer");
}

#[test]
fn liveness_transitions_reschedule_linked_queries() {
    let n = 32;
    let (mut mortar, q) = session(n, 77, 1.0, |p| {
        p.adaptive_ticks = true;
        p.liveness_reschedule = true;
    });
    mortar.run_secs(12.0);
    let healthy = mortar.completeness(&q, 5);
    assert!(healthy > 90.0, "unhealthy before failures: {healthy}%");

    // Kill a third of the non-root fleet long enough for the survivors to
    // cross the liveness horizon (2 s beats × 3 + tick), then revive.
    for node in [3u32, 7, 11, 19, 26] {
        mortar.set_host_up(node, false);
    }
    mortar.run_secs(10.0);
    let deaths: u64 = mortar.engine().sim.apps().map(|p| p.stats.liveness_reschedules).sum();
    assert!(deaths > 0, "no death transition was piggybacked onto the due index");

    for node in [3u32, 7, 11, 19, 26] {
        mortar.set_host_up(node, true);
    }
    mortar.run_secs(10.0);
    let total: u64 = mortar.engine().sim.apps().map(|p| p.stats.liveness_reschedules).sum();
    assert!(total > deaths, "no return transition was piggybacked onto the due index");

    // The run stays healthy through the churn.
    let final_c = mortar.completeness(&q, 5);
    assert!(final_c > 70.0, "completeness collapsed through failover: {final_c}%");
}
