//! Section 5 validation: syncless indexing versus timestamps under the
//! PlanetLab-like clock-offset distribution (the Figures 9–10 mechanics at
//! test scale).

use mortar::prelude::*;
use mortar::stream::metrics::{mean_report_latency_secs, true_completeness};

fn run(mode: IndexingMode, scale: f64, n: usize, secs: f64, seed: u64) -> Vec<f64> {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.planner.branching_factor = 8;
    cfg.peer.indexing = mode;
    cfg.clock_model = ClockModel::planetlab_like(scale);
    let mut mortar = Mortar::new(cfg).expect("valid config");
    let sum5 = mortar
        .query("sum5")
        .members(0..n as NodeId)
        .periodic_secs(1.0, 1.0)
        .sum(0)
        .every_secs(5.0)
        .install()
        .expect("valid query");
    mortar.run_secs(secs);
    let results = mortar.results(&sum5);
    vec![true_completeness(&results, 5_000_000, 3), mean_report_latency_secs(&results)]
}

#[test]
fn syncless_is_immune_to_offset() {
    let clean = run(IndexingMode::Syncless, 0.0, 40, 90.0, 5);
    let skewed = run(IndexingMode::Syncless, 1.0, 40, 90.0, 5);
    assert!(clean[0] > 85.0, "baseline true completeness {:.1}", clean[0]);
    assert!(
        skewed[0] > clean[0] - 12.0,
        "syncless degraded with offset: {:.1} → {:.1}",
        clean[0],
        skewed[0]
    );
    // Latency stays small and similar.
    assert!(skewed[1] < clean[1] * 2.5 + 2.0, "syncless latency blew up: {:?}", skewed);
}

#[test]
fn timestamps_degrade_with_offset() {
    // Seed 8's clock draw puts several nodes in the offset tail, making the
    // degradation unambiguous (other seeds sample milder distributions).
    let clean = run(IndexingMode::Timestamp, 0.0, 40, 90.0, 8);
    let skewed = run(IndexingMode::Timestamp, 1.0, 40, 90.0, 8);
    assert!(clean[0] > 90.0, "with perfect clocks timestamps are accurate: {:.1}", clean[0]);
    assert!(
        skewed[0] < clean[0] - 10.0,
        "timestamps should lose completeness under offset: {:.1} → {:.1}",
        clean[0],
        skewed[0]
    );
}

#[test]
fn syncless_beats_timestamps_on_latency_under_offset() {
    // The paper's headline: result latency improves by a factor of ~8 at
    // full PlanetLab skew. At test scale, demand a clear multiple.
    let ts = run(IndexingMode::Timestamp, 1.0, 40, 90.0, 7);
    let sl = run(IndexingMode::Syncless, 1.0, 40, 90.0, 7);
    assert!(
        ts[1] > sl[1] * 2.0,
        "expected timestamp latency ≫ syncless: ts {:.1}s vs syncless {:.1}s",
        ts[1],
        sl[1]
    );
}
