//! Failure injection: message loss, duplication, reordering, and node
//! disconnection — validating the best-effort contract and the
//! duplicate-suppression requirement of Section 4.3, driven end-to-end
//! through the typed session API ([`EngineConfig::chaos`] wires transport
//! misbehaviour under the session).

use mortar::prelude::*;

fn chaotic_session(n: usize, chaos: ChaosConfig, seed: u64) -> Mortar {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.planner.branching_factor = 4;
    cfg.planner.tree_count = 4;
    cfg.chaos = chaos;
    Mortar::new(cfg)
}

fn install_sum(mortar: &mut Mortar, n: usize) -> QueryHandle {
    mortar
        .query("q")
        .members(0..n as NodeId)
        .periodic_secs(1.0, 1.0)
        .sum(0)
        .every_secs(1.0)
        .install()
        .expect("valid query")
}

#[test]
fn duplicated_messages_never_double_count() {
    // 30% of every message duplicated: the transport dedup layer plus
    // time-division indexing must keep sums ≤ n.
    let n = 32;
    let chaos = ChaosConfig { dup_prob: 0.3, ..ChaosConfig::none() };
    let mut mortar = chaotic_session(n, chaos, 21);
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(40.0);
    assert!(mortar.engine().sim.stats().duplicates_suppressed > 0, "chaos did not exercise dedup");
    let results = mortar.results(&q);
    assert!(!results.is_empty());
    let by_index = metrics::participants_by_index(&results);
    // Conservation: each (source, window) contribution counted at most
    // once globally; per-window counts may smear by ±1 window (tuple
    // dispersion, Section 5.1) but never inflate.
    let total: u64 = by_index.values().map(|&v| v as u64).sum();
    assert!(
        total <= (by_index.len() * n) as u64,
        "global over-count: {total} > {}",
        by_index.len() * n
    );
    for (idx, p) in by_index {
        // Local smear from adjacent windows is bounded; SDIMS-style
        // systematic over-counting (120–180%) must be impossible.
        assert!(f64::from(p) <= n as f64 * 1.25, "window {idx}: {p} participants ≫ {n}");
    }
}

#[test]
fn lossy_network_degrades_gracefully() {
    // 5% loss: a best-effort system keeps producing mostly complete
    // results rather than stalling.
    let n = 32;
    let chaos = ChaosConfig { drop_prob: 0.05, ..ChaosConfig::none() };
    let mut mortar = chaotic_session(n, chaos, 22);
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(60.0);
    let completeness = mortar.completeness(&q, 15);
    assert!(completeness > 70.0, "5% loss should not collapse completeness: {completeness}%");
}

#[test]
fn reordering_jitter_is_tolerated() {
    let n = 24;
    let chaos = ChaosConfig { reorder_jitter_us: 400_000, ..ChaosConfig::none() };
    let mut mortar = chaotic_session(n, chaos, 23);
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(50.0);
    let completeness = mortar.completeness(&q, 15);
    assert!(completeness > 80.0, "jitter hurt too much: {completeness}%");
}

#[test]
fn rolling_disconnections_recover() {
    let n = 40;
    let mut mortar = chaotic_session(n, ChaosConfig::none(), 24);
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(25.0);
    // Take down 25% (not the root), wait, bring back.
    let victims: Vec<NodeId> = (1..=(n as NodeId / 4)).collect();
    for &v in &victims {
        mortar.set_host_up(v, false);
    }
    mortar.run_secs(30.0);
    let during = metrics::participants_by_index(&mortar.results(&q));
    let live = n - victims.len();
    // During the outage, steady windows should count ~live peers.
    let late_during: Vec<u32> = during.values().rev().take(6).copied().collect();
    // At this small scale a few live members can be structurally cut off
    // (all parents dead and no children in any tree — unreachable even in
    // the optimal union graph), so allow a small shortfall.
    assert!(
        late_during.iter().any(|&p| p as usize >= live - 3),
        "live peers unaccounted during failure: {late_during:?} (live={live})"
    );
    for &v in &victims {
        mortar.set_host_up(v, true);
    }
    mortar.run_secs(30.0);
    let after = metrics::participants_by_index(&mortar.results(&q));
    let late_after: Vec<u32> = after.values().rev().take(6).copied().collect();
    assert!(
        late_after.iter().any(|&p| p as usize >= n - 1),
        "peers did not rejoin: {late_after:?}"
    );
}

#[test]
fn query_installs_through_partial_outage_via_reconciliation() {
    let n = 32;
    let mut mortar = chaotic_session(n, ChaosConfig::none(), 31);
    // 40% down at install time.
    let victims: Vec<NodeId> = (1..=12).collect();
    for &v in &victims {
        mortar.set_host_up(v, false);
    }
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(10.0);
    let installed_during = mortar.installed_count(&q);
    assert!(installed_during >= n - victims.len() - 6, "install too sparse: {installed_during}");
    for &v in &victims {
        mortar.set_host_up(v, true);
    }
    // Reconciliation every 3rd heartbeat (6 s) + topology fetch.
    mortar.run_secs(40.0);
    assert_eq!(mortar.active_count(&q), n, "reconciliation must reach everyone");
}
