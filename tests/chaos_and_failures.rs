//! Failure injection: message loss, duplication, reordering, and node
//! disconnection — validating the best-effort contract and the
//! duplicate-suppression requirement of Section 4.3, driven end-to-end
//! through the typed session API ([`EngineConfig::chaos`] wires transport
//! misbehaviour under the session).

use mortar::prelude::*;

fn chaotic_session(n: usize, chaos: ChaosConfig, seed: u64) -> Mortar {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    cfg.planner.branching_factor = 4;
    cfg.planner.tree_count = 4;
    cfg.chaos = chaos;
    Mortar::new(cfg).expect("valid config")
}

fn install_sum(mortar: &mut Mortar, n: usize) -> QueryHandle {
    mortar
        .query("q")
        .members(0..n as NodeId)
        .periodic_secs(1.0, 1.0)
        .sum(0)
        .every_secs(1.0)
        .install()
        .expect("valid query")
}

#[test]
fn duplicated_messages_never_double_count() {
    // 30% of every message duplicated: the transport dedup layer plus
    // time-division indexing must keep sums ≤ n.
    let n = 32;
    let chaos = ChaosConfig { dup_prob: 0.3, ..ChaosConfig::none() };
    let mut mortar = chaotic_session(n, chaos, 21);
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(40.0);
    assert!(mortar.engine().sim.stats().duplicates_suppressed > 0, "chaos did not exercise dedup");
    let results = mortar.results(&q);
    assert!(!results.is_empty());
    let by_index = metrics::participants_by_index(&results);
    // Conservation: each (source, window) contribution counted at most
    // once globally; per-window counts may smear by ±1 window (tuple
    // dispersion, Section 5.1) but never inflate.
    let total: u64 = by_index.values().map(|&v| v as u64).sum();
    assert!(
        total <= (by_index.len() * n) as u64,
        "global over-count: {total} > {}",
        by_index.len() * n
    );
    for (idx, p) in by_index {
        // Local smear from adjacent windows is bounded; SDIMS-style
        // systematic over-counting (120–180%) must be impossible.
        assert!(f64::from(p) <= n as f64 * 1.25, "window {idx}: {p} participants ≫ {n}");
    }
}

#[test]
fn lossy_network_degrades_gracefully() {
    // 5% loss: a best-effort system keeps producing mostly complete
    // results rather than stalling.
    let n = 32;
    let chaos = ChaosConfig { drop_prob: 0.05, ..ChaosConfig::none() };
    let mut mortar = chaotic_session(n, chaos, 22);
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(60.0);
    let completeness = mortar.completeness(&q, 15);
    assert!(completeness > 70.0, "5% loss should not collapse completeness: {completeness}%");
}

#[test]
fn reordering_jitter_is_tolerated() {
    let n = 24;
    let chaos = ChaosConfig { reorder_jitter_us: 400_000, ..ChaosConfig::none() };
    let mut mortar = chaotic_session(n, chaos, 23);
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(50.0);
    let completeness = mortar.completeness(&q, 15);
    assert!(completeness > 80.0, "jitter hurt too much: {completeness}%");
}

#[test]
fn rolling_disconnections_recover() {
    let n = 40;
    let mut mortar = chaotic_session(n, ChaosConfig::none(), 24);
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(25.0);
    // Take down 25% (not the root), wait, bring back.
    let victims: Vec<NodeId> = (1..=(n as NodeId / 4)).collect();
    for &v in &victims {
        mortar.set_host_up(v, false);
    }
    mortar.run_secs(30.0);
    let during = metrics::participants_by_index(&mortar.results(&q));
    let live = n - victims.len();
    // During the outage, steady windows should count ~live peers.
    let late_during: Vec<u32> = during.values().rev().take(6).copied().collect();
    // At this small scale a few live members can be structurally cut off
    // (all parents dead and no children in any tree — unreachable even in
    // the optimal union graph), so allow a small shortfall.
    assert!(
        late_during.iter().any(|&p| p as usize >= live - 3),
        "live peers unaccounted during failure: {late_during:?} (live={live})"
    );
    for &v in &victims {
        mortar.set_host_up(v, true);
    }
    mortar.run_secs(30.0);
    let after = metrics::participants_by_index(&mortar.results(&q));
    let late_after: Vec<u32> = after.values().rev().take(6).copied().collect();
    assert!(
        late_after.iter().any(|&p| p as usize >= n - 1),
        "peers did not rejoin: {late_after:?}"
    );
}

#[test]
fn query_installs_through_partial_outage_via_reconciliation() {
    let n = 32;
    let mut mortar = chaotic_session(n, ChaosConfig::none(), 31);
    // 40% down at install time.
    let victims: Vec<NodeId> = (1..=12).collect();
    for &v in &victims {
        mortar.set_host_up(v, false);
    }
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(10.0);
    let installed_during = mortar.installed_count(&q);
    assert!(installed_during >= n - victims.len() - 6, "install too sparse: {installed_during}");
    for &v in &victims {
        mortar.set_host_up(v, true);
    }
    // Reconciliation every 3rd heartbeat (6 s) + topology fetch.
    mortar.run_secs(40.0);
    assert_eq!(mortar.active_count(&q), n, "reconciliation must reach everyone");
}

/// Envelope soak under combined drop/duplicate/reorder chaos: the
/// cross-query envelope transport must uphold the same best-effort
/// contract as per-query frames. (The two configurations draw different
/// chaos randomness — fewer wire messages consume fewer fault rolls — so
/// the comparison is invariant-for-invariant, not bit-for-bit; exact
/// parity is proven chaos-free by `crates/core/tests/prop_batching.rs`.
/// That duplicated `Arc` envelopes are deduplicated without cloning their
/// payloads is pinned by the counting-allocator test in
/// `crates/core/tests/alloc_hotpath.rs`.)
#[test]
fn envelopes_under_chaos_uphold_the_per_query_frame_contract() {
    let n = 32;
    let chaos = ChaosConfig { drop_prob: 0.03, dup_prob: 0.25, reorder_jitter_us: 150_000 };
    let mut outcomes = Vec::new();
    for envelope_budget in [0u32, 16_384] {
        let mut cfg = EngineConfig::paper(n, 77);
        cfg.plan_on_true_latency = true;
        cfg.planner.branching_factor = 4;
        cfg.planner.tree_count = 4;
        cfg.chaos = chaos;
        cfg.peer.envelope_budget = envelope_budget;
        let mut mortar = Mortar::new(cfg).expect("valid config");
        let q = install_sum(&mut mortar, n);
        // A second, faster query over the same members: its frames share
        // wire envelopes with the sum's whenever both evict toward the
        // same next hop in one tick — the cross-query case under chaos.
        mortar
            .query("r")
            .members(0..n as NodeId)
            .periodic_secs(0.5, 1.0)
            .max(0)
            .every_secs(0.5)
            .install()
            .expect("valid query");
        mortar.run_secs(45.0);
        let eng = mortar.engine();
        // Chaos exercised the dedup layer (every duplicated envelope is a
        // whole bundle of frames that must be suppressed exactly once).
        assert!(eng.sim.stats().duplicates_suppressed > 0, "dup chaos never fired");
        if envelope_budget > 0 {
            let envelopes = eng.summary_envelopes_sent();
            assert!(envelopes > 0, "envelopes never engaged");
            assert!(
                envelopes < eng.summary_frames_sent(),
                "cross-query coalescing never shared a wire message"
            );
        } else {
            assert_eq!(eng.summary_envelopes_sent(), 0);
        }
        // Conservation under duplication: no (source, window) contribution
        // may ever be double-counted, enveloped or not.
        let by_index = metrics::participants_by_index(&mortar.results(&q));
        let total: u64 = by_index.values().map(|&v| v as u64).sum();
        assert!(
            total <= (by_index.len() * n) as u64,
            "global over-count with budget {envelope_budget}: {total}"
        );
        for (idx, p) in &by_index {
            assert!(
                f64::from(*p) <= n as f64 * 1.25,
                "budget {envelope_budget}, window {idx}: {p} participants ≫ {n}"
            );
        }
        let completeness = mortar.completeness(&q, 15);
        assert!(
            completeness > 70.0,
            "budget {envelope_budget} collapsed under chaos: {completeness}%"
        );
        outcomes.push(completeness);
    }
    // Envelopes must not change the *quality* regime: both configurations
    // ride out the same chaos at comparable completeness.
    assert!(
        (outcomes[0] - outcomes[1]).abs() < 20.0,
        "envelope completeness diverged from per-query frames: {outcomes:?}"
    );
}

/// Regression for the id-keyed (de-stringed) removal cache: a peer that
/// sleeps through a remove *and* a same-named reinstall must reconverge
/// via reconciliation — the reinstall's higher sequence beats the
/// tombstone it never saw, and the tombstone it eventually hears about
/// must not kill the reinstalled query.
#[test]
fn reconcile_converges_after_remove_and_reinstall_of_same_name() {
    let n = 16;
    let mut mortar = chaotic_session(n, ChaosConfig::none(), 41);
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(10.0);
    assert_eq!(mortar.active_count(&q), n);
    // Peer 5 sleeps through both commands.
    mortar.set_host_up(5, false);
    mortar.run_secs(8.0);
    mortar.remove(q).expect("installed");
    mortar.run_secs(8.0);
    let q2 = install_sum(&mut mortar, n);
    mortar.run_secs(8.0);
    assert!(
        mortar.engine().sim.app(5).has_query("q"),
        "the sleeper should still run the stale incarnation it never saw removed"
    );
    mortar.set_host_up(5, true);
    // Reconciliation every 3rd heartbeat (6 s) + topology fetch.
    mortar.run_secs(40.0);
    assert_eq!(mortar.active_count(&q2), n, "reinstall must reach the sleeper");
    // And the sleeper contributes data again: late windows count all n.
    let by_index = metrics::participants_by_index(&mortar.results(&q2));
    let late: Vec<u32> = by_index.values().rev().take(6).copied().collect();
    assert!(late.iter().any(|&p| p as usize == n), "sleeper not contributing: {late:?}");
}

/// The inverse direction: a peer that missed only the removal learns it
/// from the id-keyed removal cache carried by reconciliation.
#[test]
fn removal_reconciles_to_a_partitioned_peer() {
    let n = 16;
    let mut mortar = chaotic_session(n, ChaosConfig::none(), 43);
    let q = install_sum(&mut mortar, n);
    mortar.run_secs(10.0);
    mortar.set_host_up(3, false);
    mortar.run_secs(5.0);
    mortar.remove(q).expect("installed");
    mortar.run_secs(10.0);
    assert!(mortar.engine().sim.app(3).has_query("q"), "sleeper should still run the query");
    mortar.set_host_up(3, true);
    mortar.run_secs(30.0);
    assert!(!mortar.engine().sim.app(3).has_query("q"), "removal never reconciled to the sleeper");
}
