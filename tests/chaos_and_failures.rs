//! Failure injection: message loss, duplication, reordering, and node
//! disconnection — validating the best-effort contract and the
//! duplicate-suppression requirement of Section 4.3.

use mortar::prelude::*;
use mortar::stream::msg::MortarMsg;
use mortar::stream::query::build_records;
use mortar_net::{ChaosConfig, SimBuilder};

fn spec(n: usize) -> QuerySpec {
    QuerySpec {
        name: "q".into(),
        root: 0,
        members: (0..n as NodeId).collect(),
        op: OpKind::Sum { field: 0 },
        window: WindowSpec::time_tumbling_us(1_000_000),
        filter: None,
        sensor: SensorSpec::Periodic { period_us: 1_000_000, value: 1.0 },
        post: None,
    }
}

fn chaotic_sim(n: usize, chaos: ChaosConfig, seed: u64) -> mortar_net::Simulator<MortarPeer> {
    let topo = Topology::paper_inet(n, seed);
    let cfg = PeerConfig::default();
    let reg = OpRegistry::new();
    let mut sim = SimBuilder::new(topo, seed)
        .chaos(chaos)
        .build(move |id| MortarPeer::new(id, cfg, reg.clone()));
    // Plan simple trees directly (planner exercised elsewhere).
    let coords: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 7) as f64, (i / 7) as f64]).collect();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let planner = PlannerConfig { branching_factor: 4, tree_count: 4, kmeans_iters: 20 };
    let trees = mortar_overlay::plan_tree_set(&coords, 0, &planner, &mut rng);
    let s = spec(n);
    let records = build_records(&s.members, &trees);
    let msg = MortarMsg::Install { spec: s, id: QueryId(1), seq: 1, records, issue_age_us: 0 };
    sim.inject(0, 0, msg, 512);
    sim
}

#[test]
fn duplicated_messages_never_double_count() {
    // 30% of every message duplicated: the transport dedup layer plus
    // time-division indexing must keep sums ≤ n.
    let n = 32;
    let chaos = ChaosConfig { dup_prob: 0.3, ..ChaosConfig::none() };
    let mut sim = chaotic_sim(n, chaos, 21);
    sim.run_for_secs(40.0);
    assert!(sim.stats().duplicates_suppressed > 0, "chaos did not exercise dedup");
    let results = &sim.app(0).results;
    assert!(!results.is_empty());
    let by_index = metrics::participants_by_index(results);
    // Conservation: each (source, window) contribution counted at most
    // once globally; per-window counts may smear by ±1 window (tuple
    // dispersion, Section 5.1) but never inflate.
    let total: u64 = by_index.values().map(|&v| v as u64).sum();
    assert!(
        total <= (by_index.len() * n) as u64,
        "global over-count: {total} > {}",
        by_index.len() * n
    );
    for (idx, p) in by_index {
        // Local smear from adjacent windows is bounded; SDIMS-style
        // systematic over-counting (120–180%) must be impossible.
        assert!(f64::from(p) <= n as f64 * 1.25, "window {idx}: {p} participants ≫ {n}");
    }
}

#[test]
fn lossy_network_degrades_gracefully() {
    // 5% loss: a best-effort system keeps producing mostly complete
    // results rather than stalling.
    let n = 32;
    let chaos = ChaosConfig { drop_prob: 0.05, ..ChaosConfig::none() };
    let mut sim = chaotic_sim(n, chaos, 22);
    sim.run_for_secs(60.0);
    let results = &sim.app(0).results;
    let completeness = metrics::mean_completeness(results, n, 15);
    assert!(completeness > 70.0, "5% loss should not collapse completeness: {completeness}%");
}

#[test]
fn reordering_jitter_is_tolerated() {
    let n = 24;
    let chaos = ChaosConfig { reorder_jitter_us: 400_000, ..ChaosConfig::none() };
    let mut sim = chaotic_sim(n, chaos, 23);
    sim.run_for_secs(50.0);
    let completeness = metrics::mean_completeness(&sim.app(0).results, n, 15);
    assert!(completeness > 80.0, "jitter hurt too much: {completeness}%");
}

#[test]
fn rolling_disconnections_recover() {
    let n = 40;
    let mut sim = chaotic_sim(n, ChaosConfig::none(), 24);
    sim.run_for_secs(25.0);
    // Take down 25% (not the root), wait, bring back.
    let victims: Vec<NodeId> = (1..=(n as NodeId / 4)).collect();
    for &v in &victims {
        sim.set_host_up(v, false);
    }
    sim.run_for_secs(30.0);
    let during = metrics::participants_by_index(&sim.app(0).results);
    let live = n - victims.len();
    // During the outage, steady windows should count ~live peers.
    let late_during: Vec<u32> = during.values().rev().take(6).copied().collect();
    // At this small scale a few live members can be structurally cut off
    // (all parents dead and no children in any tree — unreachable even in
    // the optimal union graph), so allow a small shortfall.
    assert!(
        late_during.iter().any(|&p| p as usize >= live - 3),
        "live peers unaccounted during failure: {late_during:?} (live={live})"
    );
    for &v in &victims {
        sim.set_host_up(v, true);
    }
    sim.run_for_secs(30.0);
    let after = metrics::participants_by_index(&sim.app(0).results);
    let late_after: Vec<u32> = after.values().rev().take(6).copied().collect();
    assert!(
        late_after.iter().any(|&p| p as usize >= n - 1),
        "peers did not rejoin: {late_after:?}"
    );
}

#[test]
fn query_installs_through_partial_outage_via_reconciliation() {
    let n = 32;
    let topo = Topology::paper_inet(n, 31);
    let cfg = PeerConfig::default();
    let reg = OpRegistry::new();
    let mut sim = SimBuilder::new(topo, 31).build(move |id| MortarPeer::new(id, cfg, reg.clone()));
    // 40% down at install time.
    let victims: Vec<NodeId> = (1..=12).collect();
    for &v in &victims {
        sim.set_host_up(v, false);
    }
    let coords: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(31);
    let planner = PlannerConfig { branching_factor: 4, tree_count: 4, kmeans_iters: 10 };
    let trees = mortar_overlay::plan_tree_set(&coords, 0, &planner, &mut rng);
    let s = spec(n);
    let records = build_records(&s.members, &trees);
    sim.inject(
        0,
        0,
        MortarMsg::Install { spec: s, id: QueryId(1), seq: 1, records, issue_age_us: 0 },
        512,
    );
    sim.run_for_secs(10.0);
    let installed_during = (0..n as NodeId).filter(|&i| sim.app(i).has_query("q")).count();
    assert!(installed_during >= n - victims.len() - 6, "install too sparse: {installed_during}");
    for &v in &victims {
        sim.set_host_up(v, true);
    }
    sim.run_for_secs(40.0);
    let installed_after = (0..n as NodeId).filter(|&i| sim.app(i).is_active("q")).count();
    assert_eq!(installed_after, n, "reconciliation must reach everyone");
}
