//! Tier-1 gate: `mortar-lint` must run clean over the workspace.
//!
//! Every finding the static pass raises must either be fixed or carry a
//! written waiver (`lint:order-insensitive(...)` / `lint:allow(...)`).
//! This is the enforcement point for the determinism discipline described
//! in ARCHITECTURE.md — an unwaived finding fails the ordinary test run,
//! not just CI.

use std::path::Path;

#[test]
fn workspace_has_no_unwaived_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = mortar_lint::lint_workspace(root).expect("workspace sources readable");
    let unwaived: Vec<String> =
        findings.iter().filter(|f| !f.waived).map(mortar_lint::render_line).collect();
    assert!(
        unwaived.is_empty(),
        "mortar-lint found {} unwaived finding(s):\n{}\nfix the site or add a written waiver \
         (see ARCHITECTURE.md, \"Determinism discipline\")",
        unwaived.len(),
        unwaived.join("\n")
    );
}

#[test]
fn workspace_waivers_all_carry_reasons() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = mortar_lint::lint_workspace(root).expect("workspace sources readable");
    let bare: Vec<String> = findings
        .iter()
        .filter(|f| f.waived && f.waive_reason.as_deref().unwrap_or("").is_empty())
        .map(mortar_lint::render_line)
        .collect();
    assert!(bare.is_empty(), "waivers without a written reason:\n{}", bare.join("\n"));
}
