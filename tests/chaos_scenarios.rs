//! The classic failure-injection cases of `tests/chaos_and_failures.rs`,
//! re-expressed on the chaos scenario engine: each fault schedule is
//! data (a [`Scenario`]), each assertion a property oracle, and every
//! run replays bit-for-bit from its seed. The legacy file stays as the
//! session-API-level regression suite; this one pins the same
//! behaviours through the engine that the CI soak sweeps.

use mortar_chaos::{run_scenario, Fault, RunConfig, RunReport, Scenario};

fn run(sc: &Scenario, cfg: &RunConfig) -> RunReport {
    let r = run_scenario(sc, cfg).expect("well-formed scenario");
    assert!(
        r.violations.is_empty(),
        "oracles fired on {}:\n{}",
        sc.describe().lines().next().unwrap_or(""),
        r.violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    r
}

/// Port of `duplicated_messages_never_double_count`: 30% duplication for
/// the whole fault window. The conservation oracle is the old per-window
/// `participants ≤ 1.25 × members` assertion; the dedup counter proves
/// the chaos actually exercised the suppression layer.
#[test]
fn duplication_scenario_conserves_contributions() {
    let sc = Scenario::new(21, 24, 20_000)
        .at(0, Fault::Chaos { drop_prob: 0.0, dup_prob: 0.3, reorder_jitter_us: 0 });
    let r = run(&sc, &RunConfig::default());
    assert!(r.duplicates_suppressed > 0, "chaos did not exercise dedup");
}

/// Port of `lossy_network_degrades_gracefully`: 5% loss must degrade,
/// not stall — the completeness floor is the oracle.
#[test]
fn loss_scenario_degrades_gracefully() {
    let sc = Scenario::new(22, 24, 20_000)
        .at(0, Fault::Chaos { drop_prob: 0.05, dup_prob: 0.0, reorder_jitter_us: 0 });
    let mut cfg = RunConfig::default();
    cfg.oracles.completeness_floor = 70.0;
    let r = run(&sc, &cfg);
    assert!(r.dropped > 0, "chaos did not drop anything");
}

/// Port of `reordering_jitter_is_tolerated`: 400 ms reorder jitter.
#[test]
fn jitter_scenario_is_tolerated() {
    let sc = Scenario::new(23, 24, 20_000)
        .at(0, Fault::Chaos { drop_prob: 0.0, dup_prob: 0.0, reorder_jitter_us: 400_000 });
    let mut cfg = RunConfig::default();
    cfg.oracles.completeness_floor = 70.0;
    run(&sc, &cfg);
}

/// Port of `rolling_disconnections_recover`: a quarter of the fleet dies
/// mid-run and revives; after the heal the convergence oracle demands
/// one fleet-wide store fingerprint and the completeness oracle demands
/// the mean recovered over the floor.
#[test]
fn churn_scenario_recovers() {
    let victims: Vec<_> = (1..=6).collect();
    let sc = Scenario::new(24, 24, 20_000)
        .at(2_000, Fault::Kill { nodes: victims.clone() })
        .at(12_000, Fault::Revive { nodes: victims });
    run(&sc, &RunConfig::default());
}

/// Port of `removal_reconciles_to_a_partitioned_peer`, generalized: a
/// peer sleeps through installs *and* removals of queries it has never
/// heard of; after revival the no-stale oracle demands the removed ones
/// are gone everywhere and the convergence oracle demands the sleeper
/// adopted their tombstones (equal store fingerprints — the named
/// removal entries carried by reconciliation are what make that
/// possible for a query the sleeper never installed).
#[test]
fn removal_storm_reconciles_to_a_revived_sleeper() {
    let sc = Scenario::new(43, 16, 20_000)
        .at(0, Fault::InstallStorm { count: 4 })
        .at(4_000, Fault::Kill { nodes: vec![3] })
        .at(8_000, Fault::RemoveStorm { count: 2 })
        .at(14_000, Fault::Revive { nodes: vec![3] });
    let r = run(&sc, &RunConfig::default());
    // 3 base + 4 storm installs - 2 removals survive on the directory.
    assert_eq!(r.installed_total, 5, "storm bookkeeping drifted");
    assert!(r.reconcile_msgs > 0, "anti-entropy never ran");
}

/// The combined-fault soak: loss + duplication + jitter over a symmetric
/// partition with churn, healed late — at least three fault kinds in one
/// schedule, every oracle armed, and the whole run replaying bit-for-bit
/// (the acceptance suite pins the cross-shard half of that property).
#[test]
fn combined_fault_scenario_stays_clean_and_replays() {
    let sc = Scenario::new(77, 24, 25_000)
        .at(0, Fault::Chaos { drop_prob: 0.03, dup_prob: 0.25, reorder_jitter_us: 150_000 })
        .at(4_000, Fault::Partition { boundary: 16, symmetric: true })
        .at(9_000, Fault::Kill { nodes: vec![5, 11] })
        .at(13_000, Fault::Heal)
        .at(16_000, Fault::Revive { nodes: vec![5, 11] })
        .at(18_000, Fault::ClearChaos);
    assert!(sc.kinds().len() >= 3);
    let a = run(&sc, &RunConfig::default());
    let b = run(&sc, &RunConfig::default());
    assert_eq!(a.fingerprint, b.fingerprint, "replay diverged");
    assert!(a.duplicates_suppressed > 0 && a.dropped > 0);
}
