//! Fault-tolerant ingestion feeds at fleet scale.
//!
//! A 100-host fleet runs one plain periodic query ("the unrelated
//! workload") beside one feed-driven query whose synthetic source bursts
//! 10× for five seconds. The acceptance properties:
//!
//! - every [`IntakePolicy`] keeps intake memory under its declared cap
//!   (`overcap == 0`) with exact conservation of offered tuples;
//! - `Backpressure` is late-but-complete: nothing is ever dropped;
//! - the unrelated query's results are bit-identical to a run with no
//!   burst feed installed at all — overload is absorbed at the leaves,
//!   not exported to innocent queries;
//! - outcomes are identical across simulator shard counts {1, 2, 4} and
//!   across repeated runs;
//! - the congestion-adaptive envelope budget is off by default (zero
//!   budget cuts), and when enabled engages under the burst: budgets are
//!   cut and the peak outbox backlog is strictly lower than the static
//!   budget's.

use mortar::prelude::*;

const HOSTS: usize = 100;
const SEED: u64 = 2024;

/// A 10× burst over frame seconds [5, 10). `period_us` sets the steady
/// rate; paired with a small `drain_max`, the burst outruns the drain and
/// genuinely pressures the intake queue.
fn burst_profile(period_us: u64) -> BurstProfile {
    BurstProfile::steady(period_us, 1.0).with_burst(5_000_000, 10_000_000, 10)
}

/// Steady emission period and drain rate tuned per policy so the burst
/// reaches the mechanism under test (watermark, stride, spill ring).
fn tuning(policy: IntakePolicy) -> (u64, usize) {
    match policy {
        // 10/s steady, 100/s burst against an 8-per-tick drain: the
        // queue saturates its 64-tuple bound mid-burst.
        IntakePolicy::Backpressure { .. } | IntakePolicy::Shed { .. } => (100_000, 8),
        IntakePolicy::Sample { .. } => (100_000, 8),
        // 50/s steady, 500/s burst: overflow must climb past the
        // 1024-tuple default queue cap into the spill ring.
        IntakePolicy::Spill { .. } => (20_000, 8),
    }
}

/// Everything one run exposes, summarized for exact comparison.
#[derive(Debug, PartialEq)]
struct Outcome {
    base: Vec<(i64, i64, Option<u64>, u32)>,
    feed_results: Vec<(i64, i64, Option<u64>, u32)>,
    feed: FeedStats,
    conserved: bool,
    outbox_peak: u64,
    budget_cuts: u64,
}

fn run(policy: Option<IntakePolicy>, shards: usize, adaptive: bool) -> Outcome {
    let mut cfg = EngineConfig::paper(HOSTS, SEED);
    cfg.plan_on_true_latency = true;
    cfg.shards = shards;
    cfg.peer.adaptive_envelopes = adaptive;
    let mut mortar = Mortar::new(cfg).expect("valid config");
    let base = mortar
        .query("base")
        .members(0..HOSTS as NodeId)
        .periodic_secs(1.0, 1.0)
        .sum(0)
        .every_secs(1.0)
        .install()
        .expect("valid base query");
    let feed = policy.map(|p| {
        let (period_us, drain) = tuning(p);
        mortar
            .query("burst")
            .members(0..HOSTS as NodeId)
            .feed_bursty(burst_profile(period_us))
            .intake(p)
            .intake_drain_max(drain)
            .sum(0)
            .every_secs(1.0)
            .install()
            .expect("valid feed query")
    });
    mortar.run_secs(20.0);
    let fp = |rs: &[metrics::ResultRecord]| {
        rs.iter().map(|r| (r.tb, r.te, r.scalar.map(f64::to_bits), r.participants)).collect()
    };
    let base_rows = fp(&mortar.results(&base));
    let feed_rows = feed.map(|h| fp(&mortar.results(&h))).unwrap_or_default();
    let (stats, conserved, _held) = mortar.engine().feed_totals();
    Outcome {
        base: base_rows,
        feed_results: feed_rows,
        feed: stats,
        conserved,
        outbox_peak: mortar.engine().outbox_peak_bytes(),
        budget_cuts: mortar.engine().envelope_budget_cuts(),
    }
}

/// The congestion-controller scenario: a tight 128 B static envelope
/// budget (so the AIMD congestion threshold is 32 B of enqueued payload
/// per destination per 250 ms window) and fast-emitting feed queries
/// whose wire load tracks the burst — steady emission stays under the
/// threshold after tree striping, the 10× burst crosses it.
fn run_adaptive(adaptive: bool, shards: usize) -> Outcome {
    let mut cfg = EngineConfig::paper(HOSTS, SEED);
    cfg.plan_on_true_latency = true;
    cfg.shards = shards;
    cfg.peer.adaptive_envelopes = adaptive;
    cfg.peer.envelope_budget = 128;
    // A real hold window: the static protocol parks frames waiting for
    // company; the congested adaptive path drops the hold and flushes,
    // which is exactly the outbox-peak difference the test asserts. The
    // hold sits below `min_timeout_us` (250 ms) so no tuple is flagged
    // urgent — urgency would flush at enqueue and hide the hold entirely.
    cfg.peer.envelope_hold_us = 200_000;
    let mut mortar = Mortar::new(cfg).expect("valid config");
    let base = mortar
        .query("base")
        .members(0..HOSTS as NodeId)
        .periodic_secs(1.0, 1.0)
        .sum(0)
        .every_secs(1.0)
        .install()
        .expect("valid base query");
    // Warm-up congestion: a moderate burst from 2.5 s on crosses the
    // threshold early, so the controller has already cut budgets and
    // dropped hold slack by the time the heavy burst lands at 5 s. A
    // reactive controller cannot beat the very first overload window —
    // what it buys is that a *sustained* overload's peak happens on its
    // watch, not the static protocol's.
    let warm = mortar
        .query("warm")
        .members(0..HOSTS as NodeId)
        .feed_bursty(BurstProfile::steady(300_000, 1.0).with_burst(2_500_000, 10_000_000, 10))
        .intake(IntakePolicy::Backpressure { credits: 1024 })
        .sum(0)
        .every_secs(0.1)
        .install()
        .expect("valid warm query");
    let feed = mortar
        .query("burst")
        .members(0..HOSTS as NodeId)
        .feed_bursty(burst_profile(500_000))
        .intake(IntakePolicy::Backpressure { credits: 1024 })
        .sum(0)
        .every_secs(0.1)
        .install()
        .expect("valid feed query");
    mortar.run_secs(20.0);
    let fp = |rs: &[metrics::ResultRecord]| -> Vec<(i64, i64, Option<u64>, u32)> {
        rs.iter().map(|r| (r.tb, r.te, r.scalar.map(f64::to_bits), r.participants)).collect()
    };
    let base_rows = fp(&mortar.results(&base));
    let mut feed_rows = fp(&mortar.results(&feed));
    feed_rows.extend(fp(&mortar.results(&warm)));
    let (stats, conserved, _held) = mortar.engine().feed_totals();
    Outcome {
        base: base_rows,
        feed_results: feed_rows,
        feed: stats,
        conserved,
        outbox_peak: mortar.engine().outbox_peak_bytes(),
        budget_cuts: mortar.engine().envelope_budget_cuts(),
    }
}

const POLICIES: [IntakePolicy; 4] = [
    IntakePolicy::Backpressure { credits: 64 },
    IntakePolicy::Shed { watermark: 64 },
    IntakePolicy::Sample { keep_1_in_n: 4 },
    IntakePolicy::Spill { cap_bytes: 4096 },
];

#[test]
fn every_policy_keeps_intake_bounded_and_isolates_unrelated_queries() {
    let baseline = run(None, 1, false);
    assert!(!baseline.base.is_empty(), "baseline produced no results");
    for policy in POLICIES {
        let out = run(Some(policy), 1, false);
        assert!(out.feed.offered > 0, "{policy:?}: source never fired");
        assert!(out.feed.delivered > 0, "{policy:?}: intake never drained");
        assert_eq!(out.feed.overcap, 0, "{policy:?}: declared cap exceeded");
        assert!(out.conserved, "{policy:?}: tuples unaccounted for: {:?}", out.feed);
        assert!(!out.feed_results.is_empty(), "{policy:?}: feed query emitted nothing");
        // Overload stays at the leaves: the unrelated query's result log
        // is bit-identical to a fleet that never hosted the burst feed.
        assert_eq!(
            out.base, baseline.base,
            "{policy:?}: burst feed perturbed an unrelated query's results"
        );
        match policy {
            IntakePolicy::Backpressure { .. } => {
                assert_eq!(
                    out.feed.shed_tuples + out.feed.sampled_out + out.feed.spill_drops,
                    0,
                    "backpressure dropped tuples"
                );
            }
            IntakePolicy::Shed { .. } => {
                assert!(out.feed.shed_tuples > 0, "10× burst never hit the shed watermark");
            }
            IntakePolicy::Sample { keep_1_in_n } => {
                assert!(out.feed.sampled_out > 0, "sampling removed nothing");
                // Stride sampling admits exactly ceil(seen / n) per feed;
                // fleet-wide the admitted:offered ratio stays within one
                // tuple per member of 1/n.
                let admitted = out.feed.offered - out.feed.sampled_out - out.feed.shed_tuples;
                let expect = out.feed.offered / u64::from(keep_1_in_n);
                assert!(
                    admitted.abs_diff(expect) <= HOSTS as u64,
                    "stride drift: admitted {admitted}, expected ~{expect}"
                );
            }
            IntakePolicy::Spill { cap_bytes } => {
                assert!(out.feed.spilled > 0, "burst never reached the spill ring");
                assert!(out.feed.peak_spill_bytes <= cap_bytes, "spill ring over its byte cap");
            }
        }
    }
}

#[test]
fn burst_outcomes_agree_across_shard_counts_and_repeats() {
    for policy in [POLICIES[0], POLICIES[3]] {
        let single = run(Some(policy), 1, false);
        for shards in [2usize, 4] {
            let parallel = run(Some(policy), shards, false);
            assert_eq!(single, parallel, "{policy:?}: shards={shards} diverged");
        }
        assert_eq!(single, run(Some(policy), 1, false), "{policy:?}: repeat run diverged");
    }
}

#[test]
fn adaptive_envelope_budget_engages_under_burst_and_is_inert_when_off() {
    let off = run_adaptive(false, 1);
    assert_eq!(off.budget_cuts, 0, "adaptive budget acted while disabled");
    assert_eq!(off, run_adaptive(false, 1), "static-budget runs are not reproducible");

    let on = run_adaptive(true, 1);
    assert!(on.budget_cuts > 0, "adaptive budget never engaged under a 10× burst");
    assert!(
        on.outbox_peak < off.outbox_peak,
        "adaptive budget should cut the outbox peak: adaptive {} >= static {}",
        on.outbox_peak,
        off.outbox_peak
    );
    // The controller reads local byte counts, never thread layout:
    // repeat runs and shard sweeps reproduce exactly.
    assert_eq!(on, run_adaptive(true, 1), "adaptive runs are not reproducible");
    assert_eq!(on, run_adaptive(true, 2), "adaptive run diverged at shards=2");
}
