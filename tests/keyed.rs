//! Keyed GROUP-BY aggregation end to end: per-key partial aggregates lift
//! at the sources, split across the sibling trees by key range at every
//! hop, re-merge key-wise through the tree set, and surface as a bounded
//! per-key map at the root — through both the typed builder
//! (`group_by`/`group_by_key`) and the MSL `group by` clause.

use mortar::prelude::*;
use mortar::stream::tuple::RawTuple;

const KEYS: u64 = 6;

/// A replay trace for one peer: every second, one tuple keyed by
/// `host % KEYS` whose value is `host + 1` — so a complete window's
/// per-key sum is exactly `Σ (i + 1)` over the hosts in that key class.
fn trace(host: u64, secs: u64) -> Vec<(u64, RawTuple)> {
    (0..secs)
        .map(|s| {
            let t = 500_000 + s * 1_000_000;
            let svc = (host % KEYS) as f64 + 1_000.0;
            (t, RawTuple { key: host % KEYS, vals: vec![svc, host as f64 + 1.0] })
        })
        .collect()
}

/// Expected per-key sum of `host + 1` over a complete `n`-host window.
fn expected_sum(n: u64, key: u64) -> f64 {
    (0..n).filter(|h| h % KEYS == key).map(|h| h as f64 + 1.0).sum()
}

fn session(n: usize, seed: u64) -> Mortar {
    let mut cfg = EngineConfig::paper(n, seed);
    cfg.plan_on_true_latency = true;
    let mut mortar = Mortar::new(cfg).expect("valid config");
    for i in 0..n as NodeId {
        mortar.set_replay(i, trace(i as u64, 60));
    }
    mortar
}

/// Folds the root's emission stream per window index: a straggling key
/// slice that misses the root entry's timeout re-emits as a fragment of
/// the same `[tb, te)` interval (ordinary multipath behaviour), so the
/// window's answer is the merge of its emissions.
fn fold_windows(
    results: &[mortar::stream::metrics::ResultRecord],
) -> std::collections::BTreeMap<(i64, i64), (u32, std::collections::BTreeMap<u64, f64>)> {
    let mut windows = std::collections::BTreeMap::new();
    for r in results {
        let slot: &mut (u32, std::collections::BTreeMap<u64, f64>) =
            windows.entry((r.tb, r.te)).or_default();
        slot.0 += r.participants;
        if let Some(groups) = r.state.groups() {
            for (k, st) in groups {
                *slot.1.entry(*k).or_insert(0.0) += st.scalar().expect("per-key scalar");
            }
        }
    }
    windows
}

/// Complete windows (participants == n across all fragments) must carry
/// the exact centralized per-key answer, bit for bit.
fn assert_complete_windows_exact(results: &[mortar::stream::metrics::ResultRecord], n: usize) {
    let windows = fold_windows(results);
    let complete: Vec<_> = windows.values().filter(|(p, _)| *p == n as u32).collect();
    assert!(!complete.is_empty(), "no complete windows out of {}", windows.len());
    for (_, groups) in &complete {
        assert_eq!(groups.len() as u64, KEYS, "complete window missing key classes");
        for (k, got) in groups {
            let want = expected_sum(n as u64, *k);
            assert_eq!(got.to_bits(), want.to_bits(), "key {k}: got {got}, want {want}");
        }
    }
}

#[test]
fn builder_group_by_key_end_to_end() {
    let n = 24;
    let mut mortar = session(n, 11);
    let q = mortar
        .query("per_src")
        .members(0..n as NodeId)
        .replay()
        .sum(1)
        .group_by_key()
        .group_cap(64)
        .every_secs(1.0)
        .install()
        .expect("valid keyed query");
    mortar.run_secs(45.0);
    let results = mortar.results(&q);
    assert_complete_windows_exact(&results, n);
    // `subscribe` drains the same keyed records incrementally.
    let fresh = mortar.subscribe(&q);
    assert_eq!(fresh.len(), results.len());
    assert!(fresh.iter().all(|r| r.state.groups().is_some() || r.scalar.is_none()));
}

#[test]
fn msl_group_by_end_to_end() {
    let n = 24;
    let mut mortar = session(n, 13);
    // `group by svc` keys the sum by the declared `svc` field; the trace
    // stores `key class + 1000` there, so groups land on 1000..1006.
    let def =
        compile("stream flows(svc, v);\nper_svc = sum(flows, v) group by svc cap 64 every 1s;")
            .expect("compiles");
    let q = mortar.install(def.stage().members(0..n as NodeId).replay()).expect("installs");
    mortar.run_secs(45.0);
    let windows = fold_windows(&mortar.results(&q));
    let complete: Vec<_> = windows.values().filter(|(p, _)| *p == n as u32).collect();
    assert!(!complete.is_empty(), "no complete windows");
    for (_, groups) in &complete {
        assert_eq!(groups.len() as u64, KEYS);
        for (k, got) in groups {
            let want = expected_sum(n as u64, k - 1_000);
            assert_eq!(got.to_bits(), want.to_bits(), "svc {k}");
        }
    }
}

#[test]
fn keyed_state_is_bounded_by_cap() {
    // 32 hosts, 32 distinct keys, cap 8: every surfaced window must track
    // at most 8 groups no matter how partials merged along the way.
    let n = 32;
    let mut cfg = EngineConfig::paper(n, 17);
    cfg.plan_on_true_latency = true;
    let mut mortar = Mortar::new(cfg).expect("valid config");
    for i in 0..n as NodeId {
        let t: Vec<(u64, RawTuple)> = (0..40u64)
            .map(|s| (500_000 + s * 1_000_000, RawTuple { key: i as u64, vals: vec![1.0] }))
            .collect();
        mortar.set_replay(i, t);
    }
    let q = mortar
        .query("capped")
        .members(0..n as NodeId)
        .replay()
        .count()
        .group_by_key()
        .group_cap(8)
        .every_secs(1.0)
        .install()
        .expect("valid keyed query");
    mortar.run_secs(30.0);
    let results = mortar.results(&q);
    assert!(!results.is_empty());
    for r in &results {
        if let Some(groups) = r.state.groups() {
            assert!(groups.len() <= 8, "cap violated: {} groups", groups.len());
        }
    }
}
