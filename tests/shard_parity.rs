//! Seed-stable parity across simulator shard counts.
//!
//! The parallel runtime's contract: for a fixed seed, a run's observable
//! outputs — results, completeness, tuple/frame/message counters, transport
//! stats — do not depend on how many worker threads drove it, and repeated
//! runs of the same configuration reproduce themselves exactly. A
//! fig13-style aggregate over 100 hosts is driven at shards ∈ {1, 2, 4}
//! (shards = 1 being the legacy single-threaded event loop) and every
//! fingerprint must coincide.

use mortar::net::TrafficClass;
use mortar::prelude::*;
use mortar::stream::tuple::RawTuple;

const HOSTS: usize = 100;
const SEED: u64 = 1313;

/// One keyed emission: (tb, te, participants, per-key value bits).
type KeyedRow = (i64, i64, u32, Vec<(u64, u64)>);

/// Everything an experiment reads back, summarized for exact comparison.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    results: Vec<(i64, i64, Option<u64>, u32)>,
    /// Keyed emissions — the group maps that rode the key-range split
    /// must coincide bit for bit.
    keyed: Vec<KeyedRow>,
    completeness_bits: u64,
    tuples_sent: u64,
    frames_sent: u64,
    envelopes_sent: u64,
    delivered: u64,
    dropped: u64,
    data_msgs: u64,
    hb_msgs: u64,
    control_msgs: u64,
    data_bytes: u64,
}

fn run(shards: usize) -> Fingerprint {
    let mut cfg = EngineConfig::paper(HOSTS, SEED);
    cfg.plan_on_true_latency = true;
    cfg.shards = shards;
    let mut mortar = Mortar::new(cfg).expect("valid config");
    for i in 0..HOSTS as NodeId {
        let trace: Vec<(u64, RawTuple)> = (0..35u64)
            .map(|s| {
                let t = 500_000 + s * 1_000_000;
                (t, RawTuple { key: i as u64 % 7, vals: vec![i as f64 + 1.0] })
            })
            .collect();
        mortar.set_replay(i, trace);
    }
    let q = mortar
        .query("agg")
        .members(0..HOSTS as NodeId)
        .periodic_secs(1.0, 1.0)
        .sum(0)
        .every_secs(1.0)
        .install()
        .expect("valid query");
    let keyed = mortar
        .query("per_key")
        .members(0..HOSTS as NodeId)
        .replay()
        .sum(0)
        .group_by_key()
        .group_cap(16)
        .every_secs(1.0)
        .install()
        .expect("valid keyed query");
    mortar.run_secs(30.0);
    let eng = mortar.engine();
    let stats = eng.sim.stats();
    let bw = eng.sim.bandwidth();
    Fingerprint {
        results: mortar
            .results(&q)
            .iter()
            .map(|r| (r.tb, r.te, r.scalar.map(f64::to_bits), r.participants))
            .collect(),
        keyed: mortar
            .results(&keyed)
            .iter()
            .map(|r| {
                let groups = r
                    .state
                    .groups()
                    .map(|g| {
                        g.iter()
                            .map(|(k, st)| (*k, st.scalar().unwrap_or(f64::NAN).to_bits()))
                            .collect()
                    })
                    .unwrap_or_default();
                (r.tb, r.te, r.participants, groups)
            })
            .collect(),
        completeness_bits: mortar.completeness(&q, 5).to_bits(),
        tuples_sent: eng.summary_tuples_sent(),
        frames_sent: eng.summary_frames_sent(),
        envelopes_sent: eng.summary_envelopes_sent(),
        delivered: stats.delivered,
        dropped: stats.dropped,
        data_msgs: bw.msgs_total(TrafficClass::Data),
        hb_msgs: bw.msgs_total(TrafficClass::Heartbeat),
        control_msgs: bw.msgs_total(TrafficClass::Control),
        data_bytes: bw.bytes_total(TrafficClass::Data),
    }
}

#[test]
fn results_and_counters_agree_across_shard_counts() {
    let single = run(1);
    assert!(!single.results.is_empty(), "baseline produced no results");
    assert!(
        single.keyed.iter().any(|(_, _, _, g)| g.len() == 7),
        "keyed baseline never surfaced all key classes"
    );
    for shards in [2usize, 4] {
        let parallel = run(shards);
        assert_eq!(single, parallel, "shards={shards} diverged from single-threaded run");
    }
}

#[test]
fn repeated_same_seed_runs_reproduce_exactly() {
    assert_eq!(run(2), run(2), "same seed, same shards: runs diverged");
    assert_eq!(run(4), run(4), "same seed, same shards: runs diverged");
}
